package compile

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/mp"
	"repro/internal/runcache"
)

// toyProgram is a minimal Program: it draws a workload from the tape's
// seeded RNG, fills an array, and folds it through a scalar accumulator,
// touching every code path the compiler specializes (bulk fills, array
// reads, scalar assigns, flop charges).
type toyProgram struct {
	name  string
	sites int
	pure  bool
}

func (p toyProgram) Name() string   { return p.name }
func (p toyProgram) NumSites() int  { return p.sites }
func (p toyProgram) PureInit() bool { return p.pure }

func (p toyProgram) Exec(t *mp.Tape, seed int64) []float64 {
	rng := t.Rand(seed)
	a := t.NewArray(0, 64)
	a.SetEach(func(i int) float64 { return rng.Float64() })
	sum := 0.0
	for i := 0; i < a.Len(); i++ {
		sum = t.Assign(1, sum+a.Get(i), 1, 0)
	}
	return []float64{sum}
}

// interpret is the reference executor: a fresh eager tape with the
// configuration applied per run, exactly as bench's interpreted path
// builds it.
func interpret(p Program, cfg []mp.Prec, sem runcache.Semantics, seed int64) ([]float64, mp.Cost, []mp.VarProfile) {
	t := mp.NewTape(p.NumSites())
	if sem == runcache.IR {
		t.SetComputeOnly(true)
	}
	for i, pr := range cfg {
		t.SetPrec(mp.VarID(i), pr)
	}
	vals := p.Exec(t, seed)
	return vals, t.Cost(), t.Profile()
}

func cfgKey(cfg []mp.Prec) string {
	b := make([]byte, len(cfg))
	for i, p := range cfg {
		b[i] = '0' + byte(p)
	}
	return string(b)
}

func noTime(mp.Cost) float64 { return 0 }

func TestCompileCacheHitsAndMisses(t *testing.T) {
	c := New(nil)
	prog := toyProgram{name: "toy", sites: 2, pure: true}
	key := Key{Bench: "toy", Semantics: runcache.Source, Model: 7, Config: ""}

	k1 := c.Compile(key, prog, nil, noTime, noTime)
	k2 := c.Compile(key, prog, nil, noTime, noTime)
	if k1 != k2 {
		t.Error("same key compiled two distinct kernels")
	}
	if s := c.Stats(); s.Kernels != 1 || s.Misses != 1 || s.Hits != 1 {
		t.Errorf("after one reuse: %+v", s)
	}

	// Any key component change is a distinct specialization.
	variants := []Key{
		{Bench: "toy", Semantics: runcache.Source, Model: 7, Config: "1"},
		{Bench: "toy", Semantics: runcache.IR, Model: 7, Config: ""},
		{Bench: "toy", Semantics: runcache.Source, Model: 8, Config: ""},
		{Bench: "toy2", Semantics: runcache.Source, Model: 7, Config: ""},
	}
	for _, v := range variants {
		if c.Compile(v, prog, nil, noTime, noTime) == k1 {
			t.Errorf("key %+v shared the kernel of %+v", v, key)
		}
	}
	if s := c.Stats(); s.Kernels != 5 || s.Misses != 5 || s.Hits != 1 {
		t.Errorf("after variants: %+v", s)
	}
	if k1.NumSites() != prog.NumSites() {
		t.Errorf("NumSites = %d, want %d", k1.NumSites(), prog.NumSites())
	}
}

// TestKernelMatchesInterpreter locks the byte-identity contract at the
// compiler's own level: for every configuration and both semantics
// tiers, a kernel run - first (recording), repeated (replaying, reused
// tape) - returns exactly the interpreted executor's values, cost, and
// profile.
func TestKernelMatchesInterpreter(t *testing.T) {
	prog := toyProgram{name: "toy", sites: 2, pure: true}
	configs := [][]mp.Prec{
		nil,
		{mp.F32, mp.F32},
		{mp.F32, mp.F64},
		{mp.F64, mp.F32},
	}
	for _, sem := range []runcache.Semantics{runcache.Source, runcache.IR} {
		c := New(nil)
		for _, cfg := range configs {
			wantVals, wantCost, wantProf := interpret(prog, cfg, sem, 42)
			k := c.Compile(Key{Bench: "toy", Semantics: sem, Model: 1, Config: cfgKey(cfg)}, prog, cfg, noTime, noTime)
			for run := 0; run < 3; run++ {
				vals, cost, prof := k.Run(prog, 42)
				if !reflect.DeepEqual(vals, wantVals) {
					t.Errorf("sem=%v cfg=%q run=%d: values %v, want %v", sem, cfgKey(cfg), run, vals, wantVals)
				}
				if cost != wantCost {
					t.Errorf("sem=%v cfg=%q run=%d: cost %+v, want %+v", sem, cfgKey(cfg), run, cost, wantCost)
				}
				if !reflect.DeepEqual(prof, wantProf) {
					t.Errorf("sem=%v cfg=%q run=%d: profile %v, want %v", sem, cfgKey(cfg), run, prof, wantProf)
				}
			}
		}
	}
}

// TestStreamSharing checks the input-stream cache: streams key on
// (bench, seed) only - shared across configurations and semantics -
// and exist at all only for seed-pure programs.
func TestStreamSharing(t *testing.T) {
	c := New(nil)
	prog := toyProgram{name: "toy", sites: 2, pure: true}
	src := c.Compile(Key{Bench: "toy", Semantics: runcache.Source, Model: 1}, prog, nil, noTime, noTime)
	ir := c.Compile(Key{Bench: "toy", Semantics: runcache.IR, Model: 1}, prog, nil, noTime, noTime)

	src.Run(prog, 1) // records seed 1
	ir.Run(prog, 1)  // replays it: streams cross semantics
	src.Run(prog, 2) // new seed, new recording
	if s := c.Stats(); s.Streams != 2 || s.StreamRecords != 2 || s.StreamReplays != 1 {
		t.Errorf("pure program stream stats: %+v", s)
	}

	impure := toyProgram{name: "impure", sites: 2, pure: false}
	k := c.Compile(Key{Bench: "impure", Semantics: runcache.Source, Model: 1}, impure, nil, noTime, noTime)
	k.Run(impure, 1)
	k.Run(impure, 1)
	if s := c.Stats(); s.Streams != 2 || s.StreamRecords != 2 || s.StreamReplays != 1 {
		t.Errorf("impure program touched the stream cache: %+v", s)
	}
}

// TestKernelConcurrentRuns hammers one kernel from many goroutines.
// Under -race this locks the pool-of-frozen-tapes concurrency claim;
// every run must still return the identical result.
func TestKernelConcurrentRuns(t *testing.T) {
	c := New(nil)
	prog := toyProgram{name: "toy", sites: 2, pure: true}
	cfg := []mp.Prec{mp.F32, mp.F64}
	k := c.Compile(Key{Bench: "toy", Semantics: runcache.Source, Model: 1, Config: cfgKey(cfg)}, prog, cfg, noTime, noTime)
	wantVals, wantCost, wantProf := interpret(prog, cfg, runcache.Source, 7)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				vals, cost, prof := k.Run(prog, 7)
				if !reflect.DeepEqual(vals, wantVals) || cost != wantCost || !reflect.DeepEqual(prof, wantProf) {
					errs <- "concurrent run diverged from the interpreter"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestNilCompilerStats keeps the nil-receiver convenience used by
// diagnostics endpoints.
func TestNilCompilerStats(t *testing.T) {
	var c *Compiler
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil compiler stats = %+v", s)
	}
}
