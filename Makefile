GO ?= go

.PHONY: build test race verify lint lint-report cover tables bench bench-smoke trace-smoke store-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the gate for every change: vet, the optional linters, and the
# full test suite under the race detector (the telemetry determinism tests
# require -race to mean anything).
verify: lint
	$(GO) vet ./...
	$(GO) test -race ./...

# lint always runs mixplint (the in-repo multichecker: typedepcheck, the
# determinism analyzers, and the soundness suite — puritycheck, keycheck,
# fsyncpath; see DESIGN.md "Static analysis"), then staticcheck and
# govulncheck when they are installed — verify works on machines without
# the external tools; CI installs both and runs them unconditionally.
# New analyzers registered in cmd/mixplint are picked up here
# automatically.
lint:
	$(GO) run ./cmd/mixplint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi

# lint-report writes the machine-readable mixplint reports (including
# the suppressed findings and their justifications): artifacts/lint.json
# for tooling and artifacts/lint.sarif for code-scanning upload.
lint-report:
	@mkdir -p artifacts
	$(GO) run ./cmd/mixplint -json ./... > artifacts/lint.json || true
	$(GO) run ./cmd/mixplint -sarif ./... > artifacts/lint.sarif || true
	@echo "lint-report: artifacts/lint.json artifacts/lint.sarif"

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

tables:
	$(GO) run ./cmd/mptables

# bench runs the performance suite 5 times with allocation stats: the tape
# and cache micro-benchmarks plus the campaign pairs - shared-vs-cold
# cache (BenchmarkCampaignSharedCache / BenchmarkCampaignColdCache),
# compiled-vs-interpreted evaluation (BenchmarkCampaignCompiled /
# BenchmarkCampaignInterpreted), and two-vs-three-rung ladder depth
# (BenchmarkCampaignLadder2 / BenchmarkCampaignLadder3). The campaign
# benchmarks pin -benchtime=5x so both halves of each pair do identical
# work and the numbers compare across runs. Raw output lands in
# artifacts/, then benchjson aggregates it into the machine-readable
# BENCH_9.json perf trajectory and refreshes the pair sections of
# artifacts/comparison.md; EXPERIMENTS.md records the reference numbers.
bench:
	@mkdir -p artifacts
	$(GO) test -run '^$$' -bench . -benchmem -count=5 ./internal/mp ./internal/bench | tee artifacts/bench-micro.txt
	$(GO) test -run '^$$' -bench 'BenchmarkCampaign|BenchmarkTableIII|BenchmarkEvaluatorThroughput' -benchmem -benchtime=5x -count=5 . | tee artifacts/bench-campaign.txt
	$(GO) run ./cmd/benchjson -out BENCH_9.json -comparison artifacts/comparison.md \
		artifacts/bench-micro.txt artifacts/bench-campaign.txt
	@echo "bench: BENCH_9.json artifacts/comparison.md"

# trace-smoke runs the small fault-injection campaign, exports its
# deterministic trace and profile into artifacts/, and validates the
# trace against the Chrome trace_event schema - the end-to-end guard
# behind the observability surface (see README "Observability").
trace-smoke:
	@mkdir -p artifacts
	$(GO) run ./cmd/mixpbench -config configs/faulty.yaml -seed 42 \
		-trace artifacts/trace.json -profile artifacts/profile.json
	$(GO) run ./cmd/tracecheck artifacts/trace.json
	@echo "trace-smoke: artifacts/trace.json artifacts/profile.json"

# store-smoke drives the durability loop end to end against the real
# binary: run the fault-injection campaign with a durable result store
# and a checkpoint journal, SIGKILL it mid-run, restart over the torn
# state, and assert the recovered campaign is byte-identical to an
# uninterrupted storeless run - then re-run warm and assert a >=99%
# store hit rate. Store stats land in artifacts/ (see README
# "Durability").
store-smoke:
	@mkdir -p artifacts
	sh ./scripts/store-smoke.sh artifacts

# bench-smoke compiles and runs every benchmark once (CI's guard against
# benchmark rot; no timing value). The BenchmarkCampaign pattern covers
# BenchmarkCampaignCompiled and BenchmarkCampaignInterpreted, so both
# evaluation paths are exercised end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/mp ./internal/bench ./internal/runcache
	$(GO) test -run '^$$' -bench 'BenchmarkCampaign' -benchtime=1x .
