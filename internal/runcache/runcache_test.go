package runcache

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func key(bench, config string) Key {
	return Key{Bench: bench, Seed: 42, Semantics: Source, Model: 7, Config: config}
}

// TestDoMemoises checks the basic contract: the first call for a key
// executes, every later call is served from the table.
func TestDoMemoises(t *testing.T) {
	c := New(Options[int]{})
	calls := 0
	fn := func() int { calls++; return 99 }
	for i := 0; i < 5; i++ {
		if got := c.Do(key("hydro-1d", "01"), fn); got != 99 {
			t.Fatalf("Do = %d, want 99", got)
		}
	}
	if calls != 1 {
		t.Fatalf("fn executed %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 4 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 4 hits, 1 entry", s)
	}
}

// TestKeyComponentsSeparate checks that every key component separates
// entries: no component can be dropped without cross-serving results.
func TestKeyComponentsSeparate(t *testing.T) {
	c := New(Options[int]{})
	base := Key{Bench: "eos", Seed: 1, Semantics: Source, Model: 3, Config: "01"}
	variants := []Key{
		base,
		{Bench: "iccg", Seed: 1, Semantics: Source, Model: 3, Config: "01"},
		{Bench: "eos", Seed: 2, Semantics: Source, Model: 3, Config: "01"},
		{Bench: "eos", Seed: 1, Semantics: IR, Model: 3, Config: "01"},
		{Bench: "eos", Seed: 1, Semantics: Source, Model: 4, Config: "01"},
		{Bench: "eos", Seed: 1, Semantics: Source, Model: 3, Config: "10"},
	}
	for i, k := range variants {
		i := i
		got := c.Do(k, func() int { return i })
		if got != i {
			t.Fatalf("variant %d served %d: key %+v collided", i, got, k)
		}
	}
	if s := c.Stats(); s.Misses != uint64(len(variants)) {
		t.Fatalf("misses = %d, want %d distinct executions", s.Misses, len(variants))
	}
}

// TestNilCacheExecutes checks that a nil *Cache degrades to calling fn,
// so callers need no nil guards.
func TestNilCacheExecutes(t *testing.T) {
	var c *Cache[int]
	calls := 0
	for i := 0; i < 2; i++ {
		if got := c.Do(key("x", ""), func() int { calls++; return 7 }); got != 7 {
			t.Fatalf("nil cache Do = %d, want 7", got)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache executed fn %d times, want every call", calls)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", s)
	}
}

// TestSingleflight checks in-flight deduplication: many goroutines
// requesting one key while its execution is still running must yield
// exactly one execution, with the waiters blocking for the leader's
// result rather than executing themselves.
func TestSingleflight(t *testing.T) {
	c := New(Options[int]{})
	const waiters = 8
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(key("lavaMD", "111"), func() int {
			calls.Add(1)
			close(started)
			<-release
			return 5
		})
	}()
	<-started

	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(key("lavaMD", "111"), func() int {
				calls.Add(1)
				return -1 // must never run
			})
		}(i)
	}
	// Every waiter must end up blocked on the in-flight entry before the
	// leader is released.
	for c.Stats().InflightWaits < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("executed %d times under contention, want 1", n)
	}
	for i, r := range results {
		if r != 5 {
			t.Fatalf("waiter %d got %d, want the leader's 5", i, r)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != waiters || s.InflightWaits != waiters {
		t.Fatalf("stats = %+v, want 1 miss, %d hits, %d inflight waits", s, waiters, waiters)
	}
}

// TestLeaderPanicRetries checks the recovery path: a leader that panics
// discards its entry, waiters retry under their own call frames, and the
// key stays usable afterwards.
func TestLeaderPanicRetries(t *testing.T) {
	c := New(Options[int]{})
	k := key("srad", "1")

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("leader's panic did not propagate")
			}
		}()
		c.Do(k, func() int { panic("injected") })
	}()

	// The poisoned entry must be gone: the next call leads a fresh
	// execution rather than deadlocking or serving garbage.
	done := make(chan int, 1)
	go func() { done <- c.Do(k, func() int { return 11 }) }()
	select {
	case got := <-done:
		if got != 11 {
			t.Fatalf("post-panic Do = %d, want 11", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-panic Do deadlocked")
	}
	if s := c.Stats(); s.Entries != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want the panicked attempt uncounted", s)
	}
}

// TestCloneIsolation checks that mutating a returned value cannot corrupt
// the shared entry when a Clone is configured.
func TestCloneIsolation(t *testing.T) {
	c := New(Options[[]float64]{Clone: func(v []float64) []float64 {
		out := make([]float64, len(v))
		copy(out, v)
		return out
	}})
	k := key("cfd", "0011")
	first := c.Do(k, func() []float64 { return []float64{1, 2, 3} })
	first[0] = -999
	second := c.Do(k, func() []float64 { t.Fatal("re-executed"); return nil })
	if second[0] != 1 {
		t.Fatalf("cached value corrupted through a returned clone: %v", second)
	}
}

// TestTelemetryCounters checks the cache's own instrumentation: the
// bench-labelled hit/miss/inflight-wait counters and the runcache_hit
// event stream.
func TestTelemetryCounters(t *testing.T) {
	sink := telemetry.NewMemorySink()
	tel := telemetry.New(sink)
	c := New(Options[int]{Telemetry: tel})

	c.Do(key("eos", "01"), func() int { return 1 })     // miss
	c.Do(key("eos", "01"), func() int { return 1 })     // hit
	c.Do(key("eos", "01"), func() int { return 1 })     // hit
	c.Do(key("tri-diag", "1"), func() int { return 2 }) // miss

	var buf strings.Builder
	if err := tel.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mixpbench_runcache_hits_total{bench="eos"} 2`,
		`mixpbench_runcache_misses_total{bench="eos"} 1`,
		`mixpbench_runcache_misses_total{bench="tri-diag"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}

	hits := 0
	for _, e := range sink.Events() {
		if e.Name != "runcache_hit" {
			continue
		}
		hits++
		if e.Fields["bench"] != "eos" || e.Fields["config"] != "01" || e.Fields["semantics"] != "source" {
			t.Errorf("runcache_hit fields = %v", e.Fields)
		}
	}
	if hits != 2 {
		t.Errorf("runcache_hit events = %d, want 2", hits)
	}
}

// TestStatsDeterministicTotals checks the documented invariant campaign
// tests rely on: Misses equals distinct keys and Hits+Misses equals
// completed calls, regardless of the interleaving.
func TestStatsDeterministicTotals(t *testing.T) {
	c := New(Options[int]{})
	const (
		goroutines = 8
		keys       = 5
		rounds     = 20
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					c.Do(key("planckian", strings.Repeat("1", i+1)), func() int { return i })
				}
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != keys {
		t.Fatalf("misses = %d, want %d (one per distinct key)", s.Misses, keys)
	}
	if s.Hits+s.Misses != goroutines*keys*rounds {
		t.Fatalf("hits+misses = %d, want %d completed calls", s.Hits+s.Misses, goroutines*keys*rounds)
	}
}
