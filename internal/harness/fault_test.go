package harness

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/mp"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// faultSpecs builds a three-entry campaign over distinct algorithms.
// Under the canonical test fault plan (seed 3, transient 0.5, window 1)
// the injector's draws give each entry a different fate: DD dies once
// and succeeds on retry, GP runs clean, HR dies on all three attempts
// and degrades.
func faultSpecs(t *testing.T) []Spec {
	t.Helper()
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	var out []Spec
	for _, algo := range []string{"DD", "GP", "HR"} {
		s := specs[0]
		s.Analysis.Algorithm = algo
		out = append(out, s)
	}
	return out
}

// testFaultPlan is the canonical deterministic plan the fault tests
// share (see faultSpecs for the fates it deals out).
var testFaultPlan = faults.Plan{Seed: 3, Transient: 0.5, Window: 1}

func TestCampaignRetryAndDegradation(t *testing.T) {
	results, err := RunCampaign(faultSpecs(t), CampaignOptions{
		Workers: 2, Seed: 42, Faults: testFaultPlan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}

	// DD: transient fault on attempt 1, clean on attempt 2.
	dd := results[0]
	if dd.Err != nil || dd.Degraded {
		t.Fatalf("DD job should recover via retry, got err=%v degraded=%v", dd.Err, dd.Degraded)
	}
	if len(dd.Attempts) != 2 {
		t.Fatalf("DD attempts = %d, want 2: %+v", len(dd.Attempts), dd.Attempts)
	}
	if a := dd.Attempts[0]; a.Fault != "transient" || a.Err == "" || a.BackoffSeconds != 30 {
		t.Errorf("DD attempt 1 = %+v, want transient fault with 30s backoff", a)
	}
	if a := dd.Attempts[1]; a.Fault != "" || a.Err != "" || a.BackoffSeconds != 0 {
		t.Errorf("DD attempt 2 = %+v, want clean final attempt", a)
	}
	if !dd.Report.Found {
		t.Error("DD report lost its result to the retry machinery")
	}
	// Lost work and backoff are charged to the simulated clock.
	wantTotal := dd.Attempts[0].SpentSeconds + 30 + dd.Attempts[1].SpentSeconds
	if got := dd.TotalSeconds(); got != wantTotal {
		t.Errorf("DD TotalSeconds = %g, want %g", got, wantTotal)
	}
	if dd.Report.SpentSeconds != dd.Attempts[1].SpentSeconds {
		t.Errorf("DD Report.SpentSeconds = %g, want the final attempt's %g",
			dd.Report.SpentSeconds, dd.Attempts[1].SpentSeconds)
	}

	// GP: untouched.
	gp := results[1]
	if gp.Err != nil || len(gp.Attempts) != 1 || gp.Attempts[0].Fault != "" {
		t.Errorf("GP job should run clean: err=%v attempts=%+v", gp.Err, gp.Attempts)
	}

	// HR: transient on every attempt, degrades after the retry budget.
	hr := results[2]
	if !hr.Degraded {
		t.Fatalf("HR job should degrade, got %+v", hr)
	}
	if len(hr.Attempts) != 3 {
		t.Fatalf("HR attempts = %d, want 3 (DefaultRetryPolicy)", len(hr.Attempts))
	}
	if hr.Err == nil || !strings.Contains(hr.Err.Error(), "degraded after 3 attempts") {
		t.Errorf("HR error = %v, want structured degradation error", hr.Err)
	}
	if !errors.Is(hr.Err, search.ErrTransient) {
		t.Errorf("HR error should wrap the transient cause: %v", hr.Err)
	}
	if b1, b2, b3 := hr.Attempts[0].BackoffSeconds, hr.Attempts[1].BackoffSeconds, hr.Attempts[2].BackoffSeconds; b1 != 30 || b2 != 60 || b3 != 0 {
		t.Errorf("HR backoffs = %g, %g, %g, want exponential 30, 60, 0", b1, b2, b3)
	}
}

// TestCampaignFaultMetricsWorkerInvariant is the acceptance check for
// fault-tolerant determinism: a campaign with injected faults, retries,
// and a degraded job produces byte-identical metric snapshots for any
// worker count.
func TestCampaignFaultMetricsWorkerInvariant(t *testing.T) {
	run := func(workers int) string {
		tel := telemetry.New(telemetry.NewMemorySink())
		if _, err := RunCampaign(faultSpecs(t), CampaignOptions{
			Workers: workers, Seed: 42, Faults: testFaultPlan, Telemetry: tel,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tel.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := run(1)
	eight := run(8)
	if one != eight {
		t.Errorf("fault-campaign snapshots differ between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", one, eight)
	}
	for _, frag := range []string{
		// DD's one retry plus HR's two.
		"mixpbench_harness_retries_total 3",
		// Every transient fault that actually struck: 1 (DD) + 3 (HR).
		`mixpbench_harness_faults_injected_total{kind="transient"} 4`,
		"mixpbench_harness_degraded_jobs 1",
		"mixpbench_harness_job_errors_total 1",
	} {
		if !strings.Contains(one, frag) {
			t.Errorf("snapshot missing %q:\n%s", frag, one)
		}
	}
}

func TestStragglerInflatesSimulatedTime(t *testing.T) {
	specs := faultSpecs(t)[:1]
	clean, err := RunCampaign(specs, CampaignOptions{Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunCampaign(specs, CampaignOptions{
		Workers: 1, Seed: 42,
		Faults: faults.Plan{Seed: 1, Straggler: 1, Slowdown: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a := slow[0].Attempts[0]; a.Fault != "straggler" {
		t.Fatalf("attempt = %+v, want straggler fault", a)
	}
	want := clean[0].Report.SpentSeconds * 3
	if got := slow[0].Report.SpentSeconds; math.Abs(got-want) > 1e-9 {
		t.Errorf("straggler SpentSeconds = %g, want 3x the clean run's (%g)", got, want)
	}
	if slow[0].Err != nil || !slow[0].Report.Found {
		t.Errorf("straggler must slow the job, not break it: %+v", slow[0])
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, "cafe", 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := JournalRecord{
		Job:   2,
		Entry: "kmeans",
		Attempts: []Attempt{
			{Attempt: 1, Fault: "transient", Err: "boom", SpentSeconds: 5, BackoffSeconds: 30},
			{Attempt: 2, SpentSeconds: 7},
		},
		Report: toJournalReport(Report{
			Benchmark: "K-means", Algorithm: "DD", Threshold: 1e-3,
			Evaluated: 9, SpentSeconds: 7,
			Speedup: math.NaN(), Quality: math.NaN(), TimedOut: true,
			Clusters: 3, Variables: 5,
		}),
		Events: telemetry.FiniteEvents([]telemetry.Event{
			{Seq: 1, Name: "evaluation", Fields: map[string]any{"speedup": math.NaN(), "n": 1}},
		}),
	}
	j.Append(rec)
	// A failed record for job 0: must be skipped on read so the job
	// re-runs.
	j.Append(JournalRecord{Job: 0, Entry: "bad", Error: "exploded"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJournal(path, "cafe", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %v, want only job 2", recs)
	}
	got, ok := recs[2]
	if !ok {
		t.Fatal("job 2 missing from journal read")
	}
	if fmt.Sprintf("%+v", got.Attempts) != fmt.Sprintf("%+v", rec.Attempts) {
		t.Errorf("attempts changed across round trip:\n%+v\n%+v", got.Attempts, rec.Attempts)
	}
	r := got.Report.report()
	if !math.IsNaN(r.Speedup) || !math.IsNaN(r.Quality) {
		t.Errorf("NaN metrics lost in round trip: %+v", r)
	}
	if r.Benchmark != "K-means" || r.Evaluated != 9 || !r.TimedOut {
		t.Errorf("report fields lost: %+v", r)
	}

	// Wrong fingerprint, wrong job count: refused.
	if _, err := ReadJournal(path, "beef", 4); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("mismatched fingerprint accepted: %v", err)
	}
	if _, err := ReadJournal(path, "cafe", 9); err == nil {
		t.Error("mismatched job count accepted")
	}

	// A torn final line (killed mid-append) is tolerated...
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, raw...), []byte(`{"job":1,"entry":"tr`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if recs, err = ReadJournal(path, "cafe", 4); err != nil || len(recs) != 1 {
		t.Errorf("torn final line not tolerated: %v, %v", recs, err)
	}
	// ...but garbage in the middle is corruption.
	if err := os.WriteFile(path, append(torn, []byte("\n{\"job\":3,\"entry\":\"x\",\"report\":{}}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path, "cafe", 4); err == nil {
		t.Error("mid-file garbage accepted")
	}
}

func TestConfigRoundTripsThroughJournalReport(t *testing.T) {
	cfg := bench.NewConfig(5)
	cfg[1], cfg[3], cfg[4] = mp.F32, mp.F32, mp.F16
	back := toJournalReport(Report{Benchmark: "b", Found: true, Config: cfg}).report()
	if back.Config.Key() != cfg.Key() {
		t.Errorf("config key round trip = %q, want %q", back.Config.Key(), cfg.Key())
	}
	if got := toJournalReport(Report{}).report(); got.Config != nil {
		t.Errorf("nil config grew a value: %v", got.Config)
	}
}

// TestCampaignCheckpointResume is the acceptance check for
// checkpoint/resume: a campaign killed after its first completed job
// and resumed from the journal must produce the same per-job results
// and a byte-identical metrics snapshot as an uninterrupted run.
func TestCampaignCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	specs := faultSpecs(t)
	full := filepath.Join(dir, "full.jsonl")

	run := func(opts CampaignOptions) ([]JobResult, string) {
		t.Helper()
		tel := telemetry.New(telemetry.NewMemorySink())
		opts.Telemetry = tel
		opts.Seed = 42
		opts.Faults = testFaultPlan
		results, err := RunCampaign(specs, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tel.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return results, buf.String()
	}

	wantResults, wantMetrics := run(CampaignOptions{Workers: 2, CheckpointPath: full})

	// Simulate the kill: keep the header and the first completed job's
	// record, drop the rest - exactly what a campaign killed mid-flight
	// leaves behind (plus, possibly, a torn line, covered elsewhere).
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want header + 3 records", len(lines))
	}
	interrupted := filepath.Join(dir, "interrupted.jsonl")
	if err := os.WriteFile(interrupted, []byte(lines[0]+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume, extending the interrupted journal in place.
	gotResults, gotMetrics := run(CampaignOptions{
		Workers: 2, ResumePath: interrupted, CheckpointPath: interrupted,
	})

	if got, want := fmt.Sprintf("%+v", gotResults), fmt.Sprintf("%+v", wantResults); got != want {
		t.Errorf("resumed results differ from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got, want)
	}
	if gotMetrics != wantMetrics {
		t.Errorf("resumed metrics differ from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", gotMetrics, wantMetrics)
	}

	// The extended journal alone must now be able to restart the whole
	// campaign (every successful job recorded; the degraded one re-runs).
	fp := CampaignFingerprint(specs, 42, testFaultPlan)
	recs, err := ReadJournal(interrupted, fp, len(specs))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("extended journal has %d clean records, want 2 (degraded job re-runs)", len(recs))
	}

	// Resuming under a different campaign definition is refused.
	if _, err := RunCampaign(specs, CampaignOptions{
		Workers: 2, Seed: 7, Faults: testFaultPlan, ResumePath: interrupted,
	}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("resume with a different seed accepted: %v", err)
	}
}

// TestSchedulerPanicRecoveryWithTelemetry exercises the panic-recovery
// path with a live recorder attached (run under -race by make verify):
// the panicking job must surface as a structured error in both the
// results and the telemetry, without poisoning the other jobs or the
// merge.
func TestSchedulerPanicRecoveryWithTelemetry(t *testing.T) {
	RegisterAnalysis(panicTelemetryAnalysis{})
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	bad := specs[0]
	bad.Analysis.Name = "panic-telemetry-test"
	mem := telemetry.NewMemorySink()
	tel := telemetry.New(mem)
	jobs, err := JobsFromSpecs([]Spec{specs[0], bad, specs[0]}, 42)
	if err != nil {
		t.Fatal(err)
	}
	results := Scheduler{Workers: 3, Telemetry: tel}.Run(jobs)
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("panicking job error = %v", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || !results[i].Report.Found {
			t.Errorf("healthy job %d corrupted: %+v", i, results[i])
		}
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mixpbench_harness_job_errors_total 1") {
		t.Errorf("panic not counted in metrics:\n%s", buf.String())
	}
	var sawError bool
	for _, e := range mem.Events() {
		if e.Name == "job_end" && e.Fields["job"] == 1 {
			_, sawError = e.Fields["error"]
		}
	}
	if !sawError {
		t.Error("job_end event for the panicking job carries no error field")
	}
}

// panicTelemetryAnalysis emits telemetry, then panics, so the recovery
// path runs with a partially used private recorder.
type panicTelemetryAnalysis struct{}

func (panicTelemetryAnalysis) Name() string { return "panic-telemetry-test" }
func (panicTelemetryAnalysis) Analyze(job Job) (Report, error) {
	if job.Telemetry != nil {
		job.Telemetry.Emit("pre_panic", map[string]any{"entry": job.Spec.Name})
	}
	panic("injected failure with telemetry attached")
}

func TestParseCampaignFaultsClause(t *testing.T) {
	src := kmeansYAML + `
faults:
  seed: 9
  transient: 0.25
  crash: 0.1
  straggler: 0.05
  slowdown: 2.5
  window: 8
  max_retries: 5
  backoff_base: 10
  backoff_factor: 3
  backoff_cap: 600
`
	c, err := ParseCampaign(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Specs) != 1 || c.Specs[0].Name != "kmeans" {
		t.Fatalf("specs = %+v", c.Specs)
	}
	wantPlan := faults.Plan{Seed: 9, Transient: 0.25, Crash: 0.1, Straggler: 0.05, Slowdown: 2.5, Window: 8}
	if c.Faults != wantPlan {
		t.Errorf("plan = %+v, want %+v", c.Faults, wantPlan)
	}
	wantRetry := RetryPolicy{MaxAttempts: 5, BaseSeconds: 10, Factor: 3, MaxSeconds: 600}
	if c.Retry != wantRetry {
		t.Errorf("retry = %+v, want %+v", c.Retry, wantRetry)
	}

	// ParseConfig accepts the clause but drops it.
	specs, err := ParseConfig(src)
	if err != nil || len(specs) != 1 {
		t.Errorf("ParseConfig with faults clause: %v, %d specs", err, len(specs))
	}

	for name, bad := range map[string]string{
		"unknown key":  kmeansYAML + "\nfaults:\n  flips: 0.5\n",
		"invalid rate": kmeansYAML + "\nfaults:\n  transient: 1.5\n",
		"bad number":   kmeansYAML + "\nfaults:\n  transient: lots\n",
	} {
		if _, err := ParseCampaign(bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseSpecRejectsNonPositiveThreshold(t *testing.T) {
	for _, bad := range []string{"0", "-1e-3"} {
		src := strings.Replace(kmeansYAML, "1e-3", bad, 1)
		if _, err := ParseConfig(src); err == nil || !strings.Contains(err.Error(), "positive") {
			t.Errorf("threshold %s accepted: %v", bad, err)
		}
	}
}

func TestJobsFromSpecsCollectsAllErrors(t *testing.T) {
	specs := faultSpecs(t)
	specs[0].Bin = "doom"
	specs[2].Bin = "quake"
	_, err := JobsFromSpecs(specs, 42)
	if err == nil {
		t.Fatal("unresolvable specs accepted")
	}
	for _, frag := range []string{"doom", "quake", `entry "kmeans"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("joined error missing %q: %v", frag, err)
		}
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{} // zero value normalizes to the default policy
	for attempt, want := range map[int]float64{1: 30, 2: 60, 3: 120, 10: 3600} {
		if got := p.Backoff(attempt); got != want {
			t.Errorf("Backoff(%d) = %g, want %g", attempt, got, want)
		}
	}
}
