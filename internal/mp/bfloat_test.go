package mp

import (
	"bytes"
	"math"
	"testing"
)

func TestBfloatKnownValues(t *testing.T) {
	overflow := math.Ldexp(2-math.Ldexp(1, -8), 127) // midpoint beyond maxFinite
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{-2, -2},
		{0.5, 0.5},
		{bfloatMaxFinite, bfloatMaxFinite}, // largest finite bfloat16
		{math.Nextafter(overflow, 0), bfloatMaxFinite}, // just below the overflow boundary
		{overflow, math.Inf(1)},                        // boundary ties away to infinity
		{-overflow, math.Inf(-1)},
		{1e39, math.Inf(1)},
		{bfloatMinNormal, bfloatMinNormal},   // smallest normal, 2^-126
		{bfloatSubQuantum, bfloatSubQuantum}, // smallest subnormal, 2^-133
		{5e-41, bfloatSubQuantum},            // rounds up to min subnormal
		{bfloatSubQuantum / 2, 0},            // exact tie at quantum/2: even -> 0
		{1e-45, 0},                           // flushes to zero
		{1.0 / 3.0, 0.333984375},             // 1/3 in bfloat16
		{0.1, 0.10009765625},                 // 0.1 in bfloat16
		{257, 256},                           // 8-bit significand: ties to even
		{259, 260},
		// The format's reason to exist: range survives where binary16
		// overflows (1e10 is Inf in f16, finite here).
		{1e10, 9999220736},
	}
	for _, c := range cases {
		got := roundToBfloat(c.in)
		if math.IsInf(c.want, 0) {
			if !math.IsInf(got, int(math.Copysign(1, c.want))) {
				t.Errorf("roundToBfloat(%g) = %g, want %g", c.in, got, c.want)
			}
			continue
		}
		if got != c.want {
			t.Errorf("roundToBfloat(%g) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBfloatSpecials(t *testing.T) {
	if !math.IsNaN(roundToBfloat(math.NaN())) {
		t.Error("NaN not preserved")
	}
	if !math.IsInf(roundToBfloat(math.Inf(1)), 1) || !math.IsInf(roundToBfloat(math.Inf(-1)), -1) {
		t.Error("infinities not preserved")
	}
	negZero := roundToBfloat(math.Copysign(0, -1))
	if negZero != 0 || !math.Signbit(negZero) {
		t.Error("negative zero not preserved")
	}
}

func TestBfloatBitsRoundTrip(t *testing.T) {
	// Every one of the 65536 bit patterns must decode and re-encode
	// identically (NaN payloads collapse to the canonical quiet NaN).
	for b := 0; b < 1<<16; b++ {
		bits := uint16(b)
		v := bfloatFromBits(bits)
		back := bfloatBits(v)
		if math.IsNaN(v) {
			if back&0x7F80 != 0x7F80 || back&0x7F == 0 {
				t.Fatalf("bits %#04x: NaN re-encoded as %#04x", bits, back)
			}
			continue
		}
		if back != bits {
			t.Fatalf("bits %#04x -> %v -> %#04x", bits, v, back)
		}
	}
}

func TestBfloatValuesAreFixedPoints(t *testing.T) {
	// Every decodable bfloat16 value must round to itself.
	for b := 0; b < 1<<16; b++ {
		v := bfloatFromBits(uint16(b))
		if math.IsNaN(v) {
			continue
		}
		if got := roundToBfloat(v); got != v {
			t.Fatalf("bfloat16 value %v (bits %#04x) rounds to %v", v, b, got)
		}
	}
}

func TestBfloatRoundNearest(t *testing.T) {
	// Exhaustive nearest-value check against the midpoints of consecutive
	// positive finite bfloat16 values.
	prev := 0.0
	for b := 1; b < 0x7F80; b++ {
		v := bfloatFromBits(uint16(b))
		mid := (prev + v) / 2
		lo, hi := roundToBfloat(math.Nextafter(mid, 0)), roundToBfloat(math.Nextafter(mid, v))
		if lo != prev {
			t.Fatalf("below midpoint of (%v, %v): got %v", prev, v, lo)
		}
		if hi != v {
			t.Fatalf("above midpoint of (%v, %v): got %v", prev, v, hi)
		}
		// The exact midpoint ties to the even significand.
		tie := roundToBfloat(mid)
		if tie != prev && tie != v {
			t.Fatalf("midpoint of (%v, %v) rounded to %v", prev, v, tie)
		}
		if bfloatBits(tie)&1 != 0 {
			t.Fatalf("midpoint of (%v, %v) tied to odd significand %v", prev, v, tie)
		}
		prev = v
	}
}

func TestPrecBF16Basics(t *testing.T) {
	if BF16.Size() != 2 {
		t.Errorf("BF16.Size() = %d", BF16.Size())
	}
	if BF16.String() != "bfloat16" {
		t.Errorf("BF16.String() = %q", BF16.String())
	}
	if BF16.Name() != "bf16" {
		t.Errorf("BF16.Name() = %q", BF16.Name())
	}
	if BF16.ExpBits() != 8 || BF16.MantBits() != 7 {
		t.Errorf("BF16 widths = (%d, %d)", BF16.ExpBits(), BF16.MantBits())
	}
	if got := BF16.Round(1.0 / 3.0); got != 0.333984375 {
		t.Errorf("BF16.Round(1/3) = %v", got)
	}
	// bf16 keeps less precision than f16 but more range: widerPrec orders
	// it below F16, and a huge value stays finite.
	if !widerPrec(F16, BF16) {
		t.Error("F16 should be wider (more mantissa bits) than BF16")
	}
	if math.IsInf(BF16.Round(1e10), 0) || !math.IsInf(F16.Round(1e10), 0) {
		t.Error("range ordering of BF16 vs F16 violated at 1e10")
	}
}

func TestBfloatIO(t *testing.T) {
	vals := []float64{0, 1, -1.5, 0.1, bfloatMaxFinite, 1e39, 1e-43}
	var buf bytes.Buffer
	if err := WriteValues(&buf, BF16, vals); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(vals)*2 {
		t.Fatalf("wrote %d bytes", buf.Len())
	}
	back, err := ReadValues(&buf, BF16, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		want := roundToBfloat(v)
		if math.IsInf(want, 0) {
			if !math.IsInf(back[i], 1) {
				t.Errorf("[%d] = %v, want +Inf", i, back[i])
			}
			continue
		}
		if back[i] != want {
			t.Errorf("[%d] = %v, want %v", i, back[i], want)
		}
	}
}

func TestTapeWithBfloatPrecision(t *testing.T) {
	tape := NewTape(2)
	tape.SetPrec(0, BF16)
	a := tape.NewArray(0, 4)
	a.Set(0, 1.0/3.0)
	if got := a.Get(0); got != 0.333984375 {
		t.Errorf("bfloat array element = %v", got)
	}
	c := tape.Cost()
	if c.Footprint16 != 8 { // 4 elements x 2 bytes: bf16 meters in the 2-byte class
		t.Errorf("Footprint16 = %d", c.Footprint16)
	}
	if c.Bytes16 != 4 { // one set + one get, 2 bytes each
		t.Errorf("Bytes16 = %d", c.Bytes16)
	}
	// Mixed bf16/double expression runs at double and costs a cast
	// attributed to the (8-byte -> 2-byte) pair.
	tape.Assign(0, 1, 2, 1)
	c = tape.Cost()
	if c.Flops64 != 2 || c.Casts != 1 || c.CastPairs[0][2] != 1 {
		t.Errorf("mixed expr cost = %+v", c)
	}
	// bf16/bf16 expression runs in the 2-byte class.
	tape.SetPrec(1, BF16)
	tape.Assign(0, 1, 3, 1)
	if got := tape.Cost().Flops16; got != 3 {
		t.Errorf("Flops16 = %d, want 3", got)
	}
}
