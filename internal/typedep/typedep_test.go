package typedep

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mp"
)

// listingOneGraph builds the dependence graph of the paper's Listing 1:
// vect_mult(n, input, inout, ratio) with local res, called from foo with
// arr, val, scale. Expected partition: {arr,input}, {val,inout}, {scale},
// {ratio}, {res}.
func listingOneGraph() (*Graph, map[string]mp.VarID) {
	g := NewGraph()
	ids := map[string]mp.VarID{
		"input": g.Add("input", "vect_mult", Param),
		"inout": g.Add("inout", "vect_mult", Param),
		"ratio": g.Add("ratio", "vect_mult", Param),
		"res":   g.Add("res", "vect_mult", Scalar),
		"arr":   g.Add("arr", "foo", ArrayVar),
		"val":   g.Add("val", "foo", Scalar),
		"scale": g.Add("scale", "foo", Scalar),
	}
	g.Connect(ids["arr"], ids["input"]) // arr passed as input (pointer)
	g.Connect(ids["val"], ids["inout"]) // &val passed as inout
	return g, ids
}

func TestListingOnePartition(t *testing.T) {
	g, ids := listingOneGraph()
	if got := g.NumVars(); got != 7 {
		t.Fatalf("NumVars = %d, want 7", got)
	}
	if got := g.NumClusters(); got != 5 {
		t.Fatalf("NumClusters = %d, want 5", got)
	}
	if !g.SameCluster(ids["arr"], ids["input"]) {
		t.Error("arr and input should share a cluster")
	}
	if !g.SameCluster(ids["val"], ids["inout"]) {
		t.Error("val and inout should share a cluster")
	}
	if g.SameCluster(ids["scale"], ids["ratio"]) {
		t.Error("scale and ratio are independent scalars")
	}
	if g.SameCluster(ids["res"], ids["ratio"]) {
		t.Error("res and ratio are independent")
	}
}

func TestClustersAreAPartition(t *testing.T) {
	g, _ := listingOneGraph()
	clusters := g.Clusters()
	seen := make(map[mp.VarID]bool)
	for i, c := range clusters {
		if c.Index != i {
			t.Errorf("cluster %d has Index %d", i, c.Index)
		}
		if len(c.Members) == 0 {
			t.Errorf("cluster %d is empty", i)
		}
		for _, m := range c.Members {
			if seen[m] {
				t.Errorf("variable %d in two clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != g.NumVars() {
		t.Errorf("partition covers %d of %d variables", len(seen), g.NumVars())
	}
}

func TestClustersDeterministicOrder(t *testing.T) {
	g, _ := listingOneGraph()
	a := g.Clusters()
	b := g.Clusters()
	if len(a) != len(b) {
		t.Fatal("cluster count changed between calls")
	}
	for i := range a {
		if len(a[i].Members) != len(b[i].Members) {
			t.Fatalf("cluster %d size changed", i)
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				t.Fatalf("cluster %d member %d changed", i, j)
			}
		}
	}
	// Clusters sorted by smallest member, members ascending.
	prev := mp.VarID(-1)
	for _, c := range a {
		if c.Members[0] <= prev {
			t.Errorf("clusters not ordered by smallest member")
		}
		prev = c.Members[0]
		for j := 1; j < len(c.Members); j++ {
			if c.Members[j] <= c.Members[j-1] {
				t.Errorf("members not ascending in cluster %d", c.Index)
			}
		}
	}
}

func TestConnectAllAndTransitivity(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "f", Scalar)
	b := g.Add("b", "f", Scalar)
	c := g.Add("c", "f", Scalar)
	d := g.Add("d", "f", Scalar)
	g.ConnectAll(a, b, c)
	if !g.SameCluster(a, c) {
		t.Error("ConnectAll should be transitive")
	}
	if g.SameCluster(a, d) {
		t.Error("d should remain separate")
	}
	g.Connect(c, d)
	if !g.SameCluster(a, d) {
		t.Error("union should merge through c")
	}
	if g.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1", g.NumClusters())
	}
}

func TestConnectSelfIsNoop(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "f", Scalar)
	g.Connect(a, a)
	if g.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1", g.NumClusters())
	}
}

func TestDuplicateDeclarationPanics(t *testing.T) {
	g := NewGraph()
	g.Add("x", "f", Scalar)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate declaration")
		}
	}()
	g.Add("x", "f", Scalar)
}

func TestLookup(t *testing.T) {
	g, ids := listingOneGraph()
	id, ok := g.Lookup("res", "vect_mult")
	if !ok || id != ids["res"] {
		t.Errorf("Lookup(res) = %d, %v", id, ok)
	}
	if _, ok := g.Lookup("missing", "vect_mult"); ok {
		t.Error("Lookup of missing variable succeeded")
	}
}

func TestUnitsAndUnitVars(t *testing.T) {
	g, _ := listingOneGraph()
	units := g.Units()
	if len(units) != 2 || units[0] != "vect_mult" || units[1] != "foo" {
		t.Errorf("Units = %v", units)
	}
	if got := len(g.UnitVars("vect_mult")); got != 4 {
		t.Errorf("vect_mult has %d vars, want 4", got)
	}
	if got := len(g.UnitVars("foo")); got != 3 {
		t.Errorf("foo has %d vars, want 3", got)
	}
}

func TestSearchSpaceSize(t *testing.T) {
	if got := SearchSpaceSize(2, 10); got.Cmp(big.NewInt(1024)) != 0 {
		t.Errorf("2^10 = %v", got)
	}
	if got := SearchSpaceSize(3, 4); got.Cmp(big.NewInt(81)) != 0 {
		t.Errorf("3^4 = %v", got)
	}
	// CFD's 195 variables: verify it exceeds uint64 range rather than
	// silently wrapping.
	var maxU64 big.Int
	maxU64.SetUint64(^uint64(0))
	if got := SearchSpaceSize(2, 195); got.Cmp(&maxU64) <= 0 {
		t.Error("2^195 should exceed uint64 range")
	}
}

func TestValidRespectsClusters(t *testing.T) {
	g, ids := listingOneGraph()
	prec := make(map[mp.VarID]mp.Prec)
	lookup := func(v mp.VarID) mp.Prec { return prec[v] }

	if !g.Valid(lookup) {
		t.Error("all-double must be valid")
	}
	// Demote a whole cluster: valid.
	prec[ids["arr"]] = mp.F32
	prec[ids["input"]] = mp.F32
	if !g.Valid(lookup) {
		t.Error("whole-cluster demotion must be valid")
	}
	// Split a cluster: invalid (does not compile).
	prec[ids["input"]] = mp.F64
	if g.Valid(lookup) {
		t.Error("split cluster must be invalid")
	}
}

func TestKindString(t *testing.T) {
	if Scalar.String() != "scalar" || ArrayVar.String() != "array" ||
		Param.String() != "param" || Pointer.String() != "pointer" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Error("unknown kind name wrong")
	}
}

// TestRandomGraphInvariants property-checks the union-find: for random edge
// sets, SameCluster must agree with the materialised partition and cluster
// count must equal vars minus distinct merges.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64, nVars uint8, nEdges uint8) bool {
		n := int(nVars%30) + 1
		g := NewGraph()
		for i := 0; i < n; i++ {
			g.Add(string(rune('a'+i%26))+string(rune('0'+i/26)), "u", Scalar)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(nEdges%64); i++ {
			g.Connect(mp.VarID(rng.Intn(n)), mp.VarID(rng.Intn(n)))
		}
		clusters := g.Clusters()
		if len(clusters) != g.NumClusters() {
			return false
		}
		// Build membership map and cross-check SameCluster.
		of := make(map[mp.VarID]int)
		total := 0
		for _, c := range clusters {
			for _, m := range c.Members {
				of[m] = c.Index
				total++
			}
		}
		if total != n {
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if g.SameCluster(mp.VarID(a), mp.VarID(b)) != (of[mp.VarID(a)] == of[mp.VarID(b)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// BenchmarkClusters measures partition extraction on a CFD-sized
// inventory (195 variables, 25 clusters), the hot query of search-space
// construction.
func BenchmarkClusters(b *testing.B) {
	g := NewGraph()
	var first [25]mp.VarID
	for i := 0; i < 195; i++ {
		id := g.Add(fmt.Sprintf("v%d", i), "u", Scalar)
		c := i % 25
		if i < 25 {
			first[c] = id
		} else {
			g.Connect(first[c], id)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(g.Clusters()); got != 25 {
			b.Fatalf("clusters = %d", got)
		}
	}
}
