// Package compile lowers benchmark executions into precision-specialized
// compiled kernels and caches them content-addressed, so the search
// layer's evaluation hot path stops paying the interpreted tape's
// per-access bookkeeping.
//
// The interpreted path builds a fresh mp.Tape per execution, applies the
// configuration, and meters every array access eagerly. A compiled Kernel
// instead specializes a frozen tape per configuration once - the
// precision vector is constant-folded into the tape (F64 arrays skip
// rounding entirely, F32 arrays narrow through a cached inline float32
// round), traffic charges defer to one multiply per observation point,
// and the perf-model time function is prebound - and then reuses that
// tape across every run of the same configuration, recycling its buffers
// run to run. For benchmarks whose input generation is a pure function of
// the workload seed (bench.PureIniter), the kernel also records the
// first run's input streams per seed and replays them on every later
// run, across configurations and semantics, turning bulk random
// initialisation into straight copies (see mp.Stream).
//
// Kernels are cached by Key - the (bench, semantics, machine fingerprint,
// precision vector) prefix of the run-cache purity key, i.e. everything
// that identifies an execution except the workload seed - so a
// configuration revisited by another search algorithm, another campaign
// job, or another tenant reuses the specialized kernel. The cache only
// memoizes the specialization, never results: every Run call executes the
// benchmark, and the run cache (internal/runcache) remains the only
// result memo. Everything a caller can observe - outputs, costs,
// profiles - is byte-identical to the interpreted path; the mp package
// documents why (exact deferred charging, recorded pre-rounding value
// replay).
package compile

import (
	"sync"
	"sync/atomic"

	"repro/internal/mp"
	"repro/internal/runcache"
	"repro/internal/telemetry"
)

// Program is the compiler's view of one benchmark: just enough surface to
// size the tape, gate input-stream reuse, and execute. internal/bench
// adapts its Benchmark interface onto it (the dependency points this way
// so bench can route its Runner through this package).
type Program interface {
	// Name is the suite-wide benchmark identifier.
	Name() string
	// NumSites is the total tape-slot count: searchable variables plus
	// hidden precision sites.
	NumSites() int
	// PureInit reports whether the benchmark's random-input generation is
	// a pure function of the workload seed - same draws, same bulk
	// initialisations, regardless of configuration. Only then may input
	// streams recorded under one configuration replay under another.
	PureInit() bool
	// Exec runs the benchmark against the tape and returns the
	// verification output values.
	Exec(t *mp.Tape, seed int64) []float64
}

// Key identifies one compiled kernel: the run-cache purity key without
// the workload seed. Two executions that agree on the key differ only in
// input data, which is exactly what a compiled kernel abstracts over.
type Key struct {
	// Bench is the benchmark name.
	Bench string
	// Semantics is the demotion tier the kernel specializes.
	Semantics runcache.Semantics
	// Model is the machine-model fingerprint of the owning runner.
	Model uint64
	// Config is the compact precision-vector key (bench.Config.Key).
	Config string
}

// Stats is a point-in-time view of the compiler's activity. Hits and
// Misses sum to the number of Compile calls; the split between them
// depends on real scheduling (who compiles first), so keep Stats out of
// deterministic snapshots - the runcache package documents the same
// caveat.
type Stats struct {
	// Kernels is the number of distinct compiled kernels resident.
	Kernels uint64 `json:"kernels"`
	// Hits counts Compile calls served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts Compile calls that specialized a fresh kernel.
	Misses uint64 `json:"misses"`
	// Streams is the number of recorded input streams resident.
	Streams uint64 `json:"streams"`
	// StreamRecords counts runs that recorded their input stream;
	// StreamReplays counts runs served from a recorded stream.
	StreamRecords uint64 `json:"stream_records"`
	StreamReplays uint64 `json:"stream_replays"`
}

// Compiler specializes and caches compiled kernels. One Compiler is meant
// to be shared as widely as the machine allows - across search
// algorithms, campaign jobs, and tenants - because Key carries everything
// that distinguishes two specializations. The zero value is not usable;
// construct with New.
type Compiler struct {
	mu      sync.RWMutex
	kernels map[Key]*Kernel
	streams map[streamKey]*mp.Stream

	tel *telemetry.Recorder

	hits, misses     atomic.Uint64
	records, replays atomic.Uint64
}

// streamKey addresses recorded input streams: input generation depends
// only on the benchmark and the workload seed, never on configuration,
// semantics, or machine model, so streams are shared across all kernels
// of a benchmark.
type streamKey struct {
	bench string
	seed  int64
}

// New returns an empty compiler. tel, when non-nil, receives the
// compile-cache counters (mixpbench_compile_cache_{hits,misses}_total and
// mixpbench_compile_stream_{records,replays}_total, labelled by bench);
// the hit/miss split reflects real scheduling, so keep this recorder out
// of any deterministic campaign snapshot, as with the run cache.
func New(tel *telemetry.Recorder) *Compiler {
	return &Compiler{
		kernels: make(map[Key]*Kernel),
		streams: make(map[streamKey]*mp.Stream),
		tel:     tel,
	}
}

// Compile returns the compiled kernel for key, specializing it from prog
// and cfg on first use. cfg may be shorter than prog.NumSites (unlisted
// trailing sites stay F64, exactly as the interpreted tape leaves them)
// and must be the configuration key identified by key.Config. time and
// energy are the perf-model charge functions of the machine model
// key.Model fingerprints; they are prebound onto the kernel so per-run
// post-processing is a straight call (callers with the same fingerprint
// compute identical values, so whichever caller compiles first is
// irrelevant).
func (c *Compiler) Compile(key Key, prog Program, cfg []mp.Prec, time, energy func(mp.Cost) float64) *Kernel {
	c.mu.RLock()
	k := c.kernels[key]
	c.mu.RUnlock()
	if k != nil {
		c.hits.Add(1)
		c.count("mixpbench_compile_cache_hits_total", key.Bench)
		return k
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if k = c.kernels[key]; k != nil {
		c.hits.Add(1)
		c.count("mixpbench_compile_cache_hits_total", key.Bench)
		return k
	}
	precs := make([]mp.Prec, prog.NumSites())
	copy(precs, cfg)
	k = &Kernel{
		c:           c,
		name:        key.Bench,
		precs:       precs,
		computeOnly: key.Semantics == runcache.IR,
		Time:        time,
		Energy:      energy,
	}
	c.kernels[key] = k
	c.misses.Add(1)
	c.count("mixpbench_compile_cache_misses_total", key.Bench)
	return k
}

// Stats returns the compiler's activity counters.
func (c *Compiler) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	kernels := uint64(len(c.kernels))
	streams := uint64(len(c.streams))
	c.mu.RUnlock()
	return Stats{
		Kernels:       kernels,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Streams:       streams,
		StreamRecords: c.records.Load(),
		StreamReplays: c.replays.Load(),
	}
}

// stream returns the recorded input stream for (bench, seed), nil if no
// run has published one yet.
func (c *Compiler) stream(bench string, seed int64) *mp.Stream {
	c.mu.RLock()
	s := c.streams[streamKey{bench, seed}]
	c.mu.RUnlock()
	return s
}

// publishStream stores a freshly recorded stream, first-publish-wins:
// concurrent recorders capture identical streams (recording is a pure
// function of bench and seed), so whichever lands first is kept and the
// rest are discarded.
func (c *Compiler) publishStream(bench string, seed int64, s *mp.Stream) {
	if s == nil {
		return
	}
	key := streamKey{bench, seed}
	c.mu.Lock()
	if _, ok := c.streams[key]; !ok {
		c.streams[key] = s
	}
	c.mu.Unlock()
}

func (c *Compiler) count(name, bench string) {
	if c.tel != nil {
		c.tel.Counter(name, "bench", bench).Inc()
	}
}

// Kernel is one precision-specialized compiled form of a benchmark: a
// pool of frozen tapes with the configuration folded in, plus the
// machinery to record or replay per-seed input streams. A Kernel holds
// the specialization only, never the benchmark instance - Run takes the
// Program per call, so suite lookups that construct fresh (equivalent)
// benchmark values per use always execute the caller's instance. Kernels
// are immutable after compilation and safe for concurrent Run calls
// (each run draws a private tape from the pool).
type Kernel struct {
	// Time is the prebound perf-model charge function: modelled seconds
	// as a function of metered cost under the machine model the kernel
	// was compiled for.
	Time func(mp.Cost) float64
	// Energy is the prebound perf-model energy function: modelled joules
	// as a function of metered cost under the same machine model.
	Energy func(mp.Cost) float64

	c           *Compiler
	name        string
	precs       []mp.Prec
	computeOnly bool
	tapes       sync.Pool
}

// NumSites is the tape-slot count the kernel was specialized for.
// Callers must not Run a Program with a different site count (the name
// identifies the benchmark, so this only arises from a name collision);
// they should fall back to interpretation instead.
func (k *Kernel) NumSites() int { return len(k.precs) }

// Run executes the kernel once against prog with inputs generated from
// seed and returns the verification values, the metered cost, and the
// per-variable profile - bit-identical to an interpreted run of the same
// configuration.
func (k *Kernel) Run(prog Program, seed int64) (vals []float64, cost mp.Cost, prof []mp.VarProfile) {
	t, _ := k.tapes.Get().(*mp.Tape)
	if t == nil {
		t = k.newTape()
	}
	recording := false
	if prog.PureInit() {
		if s := k.c.stream(k.name, seed); s != nil {
			t.Replay(s)
			k.c.replays.Add(1)
			k.c.count("mixpbench_compile_stream_replays_total", k.name)
		} else {
			t.StartRecording()
			recording = true
		}
	}
	vals = prog.Exec(t, seed)
	cost = t.Cost()
	prof = t.Profile()
	if recording {
		k.c.publishStream(k.name, seed, t.FinishRecording())
		k.c.records.Add(1)
		k.c.count("mixpbench_compile_stream_records_total", k.name)
	}
	t.Reset()
	k.tapes.Put(t)
	return vals, cost, prof
}

// newTape specializes one frozen tape: configuration and semantics are
// applied once here instead of per execution.
func (k *Kernel) newTape() *mp.Tape {
	t := mp.NewTape(len(k.precs))
	if k.computeOnly {
		t.SetComputeOnly(true)
	}
	for i, p := range k.precs {
		if p != mp.F64 {
			t.SetPrec(mp.VarID(i), p)
		}
	}
	t.Freeze()
	return t
}
