package seededrand

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, Analyzer, "randsrc")
}
