// Command tracecheck validates Chrome trace_event JSON files against
// the schema subset the suite exports: the object wrapper, required
// per-event fields, non-negative timestamps and durations, and
// well-nested complete events per (pid, tid) track. It is the guardrail
// behind `make trace-smoke`, catching a malformed export before anyone
// drags it into Perfetto.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
//	tracecheck < trace.json
//
// Exit status is 0 when every input validates, 1 otherwise; each
// failure is reported on stderr with its file name.
package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		if err := trace.ValidateChrome(os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck: <stdin>:", err)
			os.Exit(1)
		}
		fmt.Println("<stdin>: ok")
		return
	}
	failed := 0
	for _, path := range os.Args[1:] {
		if err := checkFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// checkFile validates one trace file.
func checkFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.ValidateChrome(f)
}
