// Package apps implements the seven proxy/mini applications of
// HPC-MixPBench (Section III-B): Blackscholes and CFD from PARSEC/Rodinia
// lineage, Hotspot, K-means, LavaMD, and SRAD from Rodinia, and HPCCG from
// the Mantevo suite. The paper merged each application's sources into one
// file for analysis; these ports preserve the merged programs' computation
// and, exactly, their Typeforge variable inventories (Table II, locked by
// tests).
//
// Where an application's behaviour under demotion carries one of the
// paper's findings, the port preserves the mechanism rather than the
// incidental constants:
//
//   - LavaMD's working set straddles the L3 boundary, so full demotion
//     wins from the cache-capacity step (the paper's largest speedup);
//   - SRAD's diffusion exponentials overflow float32, so full demotion
//     destroys the output (NaN) at any threshold;
//   - HPCCG's conjugate gradient needs roughly twice the iterations at
//     single precision, cancelling the per-iteration gain;
//   - K-means assignment is branch-dominated and converges one iteration
//     later at single precision: a small net slowdown;
//   - Hotspot and CFD contain double literals a source-level tool cannot
//     retype, charged as per-element casts in searched configurations.
package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// app carries the metadata shared by every application implementation.
type app struct {
	name   string
	desc   string
	metric verify.Metric
	graph  *typedep.Graph
}

func (a *app) Name() string          { return a.name }
func (a *app) Kind() bench.Kind      { return bench.App }
func (a *app) Description() string   { return a.desc }
func (a *app) Metric() verify.Metric { return a.metric }
func (a *app) Graph() *typedep.Graph { return a.graph }

// PureInit declares that every application draws its random inputs in a
// configuration-independent prefix of Run (all generators come from
// t.Rand seeded by the workload seed alone), so compiled kernels may
// record one input stream per seed and replay it across configurations
// (see bench.PureIniter). The cross-configuration equivalence tests lock
// the claim for every port.
func (a *app) PureInit() bool { return true }

// fillRand initialises an array with uniform values in [lo, hi). SetEach
// draws in index order, so the value stream is identical to an
// element-wise Set loop.
func fillRand(a *mp.Array, rng *rand.Rand, lo, hi float64) {
	a.SetEach(func(int) float64 { return lo + (hi-lo)*rng.Float64() })
}

// fillRandExact initialises an array with float32-exact values in
// [0, scale), where scale must be a power of two: demoting such an array is
// numerically lossless.
func fillRandExact(a *mp.Array, rng *rand.Rand, scale float64) {
	a.SetEach(func(int) float64 { return float64(rng.Float32()) * scale })
}

// addAliases declares n pointer-parameter aliases of the variable owner in
// unit, connecting each to owner. This is how the merged applications'
// parameter webs enter the dependence graph: every function that receives
// the buffer contributes one alias to the cluster.
func addAliases(g *typedep.Graph, owner mp.VarID, unit, stem string, n int) {
	for i := 0; i < n; i++ {
		id := g.Add(fmt.Sprintf("%s_p%d", stem, i), unit, typedep.Param)
		g.Connect(owner, id)
	}
}

// All returns one instance of every application, in Table II order.
func All() []bench.Benchmark {
	return []bench.Benchmark{
		NewBlackscholes(),
		NewCFD(),
		NewHotspot(),
		NewHPCCG(),
		NewLavaMD(),
		NewKMeans(),
		NewSRAD(),
	}
}

// newSeedRand returns the deterministic stream benchmarks draw their
// workloads from; correctness tests use it to reconstruct inputs.
func newSeedRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
