package typedepcheck

// This file is the constructor interpreter: a small abstract evaluator
// that executes a port's New* function symbolically, with the
// typedep.Graph operations modelled as intrinsics, to recover the
// declared variable inventory and dependence edges exactly as the
// runtime would build them — including ports that declare variables in
// loops over name tables, through helpers like addAliases, or via
// closures. Anything it cannot evaluate is an error surfaced as a
// "constructor not statically analyzable" diagnostic rather than a
// silent gap.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// ---- value domain ----

type value any

// varID is a graph variable handle (the abstract mp.VarID).
type varID int

// varMeta mirrors typedep.Variable.
type varMeta struct {
	name, unit string
	kind       int64 // typedep.Kind constant value
}

// connectRec records one Connect/ConnectAll call: its position (for
// alias annotations and diagnostics) and the ids it united.
type connectRec struct {
	pos token.Pos
	ids []int
}

// graphVal is the abstract typedep.Graph under construction.
type graphVal struct {
	vars    []varMeta
	index   map[string]int // unit+"::"+name -> id
	addPos  []token.Pos    // g.Add call position per id
	records []connectRec
}

func newGraphVal() *graphVal {
	return &graphVal{index: make(map[string]int)}
}

func (g *graphVal) add(name, unit string, kind int64, pos token.Pos) (varID, error) {
	key := unit + "::" + name
	if _, dup := g.index[key]; dup {
		return 0, fmt.Errorf("duplicate variable %s", key)
	}
	id := len(g.vars)
	g.vars = append(g.vars, varMeta{name: name, unit: unit, kind: kind})
	g.addPos = append(g.addPos, pos)
	g.index[key] = id
	return varID(id), nil
}

// edges returns every pair united by the records.
func (g *graphVal) edges() [][2]int {
	var out [][2]int
	for _, r := range g.records {
		for i := 1; i < len(r.ids); i++ {
			out = append(out, [2]int{r.ids[0], r.ids[i]})
		}
	}
	return out
}

// partition union-finds n elements over the given pairs and returns a
// root id per element.
func partition(n int, pairs [][2]int) []int {
	root := make([]int, n)
	for i := range root {
		root[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for root[x] != x {
			x = root[x]
		}
		return x
	}
	for _, p := range pairs {
		a, b := find(p[0]), find(p[1])
		if a != b {
			if b < a {
				a, b = b, a
			}
			root[b] = a
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = find(i)
	}
	return out
}

func (g *graphVal) numClusters() int {
	roots := partition(len(g.vars), g.edges())
	seen := make(map[int]bool)
	for _, r := range roots {
		seen[r] = true
	}
	return len(seen)
}

// structVal is a mutable struct instance; pointers to structs share it.
type structVal struct {
	typ    types.Type // the named struct type (or struct literal type)
	fields map[string]value
}

// sliceVal backs slices and arrays.
type sliceVal struct{ elems []value }

// mapVal backs string- and int-keyed maps.
type mapVal struct{ entries map[string]value }

func mapKey(k value) (string, error) {
	switch k := k.(type) {
	case string:
		return "s:" + k, nil
	case int64:
		return fmt.Sprintf("i:%d", k), nil
	case varID:
		return fmt.Sprintf("v:%d", int(k)), nil
	}
	return "", fmt.Errorf("unsupported map key %T", k)
}

// closureVal is a function literal plus its captured environment.
type closureVal struct {
	lit *ast.FuncLit
	env *env
}

// funcVal is a package-level function or method awaiting a receiver.
type funcVal struct {
	decl *ast.FuncDecl
	recv value // bound receiver for method values, else nil
}

// tupleVal carries multi-returns (graph.Lookup).
type tupleVal struct{ elems []value }

// ---- environment ----

type env struct {
	parent *env
	vars   map[types.Object]*cell
}

type cell struct{ v value }

func newEnv(parent *env) *env {
	return &env{parent: parent, vars: make(map[types.Object]*cell)}
}

func (e *env) lookup(obj types.Object) (*cell, bool) {
	for s := e; s != nil; s = s.parent {
		if c, ok := s.vars[obj]; ok {
			return c, true
		}
	}
	return nil, false
}

func (e *env) define(obj types.Object, v value) {
	e.vars[obj] = &cell{v: v}
}

// ---- interpreter ----

// interp evaluates constructor-shaped code for one package.
type interp struct {
	info    *types.Info
	files   []*ast.File
	pkg     *types.Package
	steps   int
	globals map[types.Object]value // package-level vars (name tables), lazily evaluated
}

const maxSteps = 2_000_000

func newInterp(info *types.Info, files []*ast.File, pkg *types.Package) *interp {
	return &interp{info: info, files: files, pkg: pkg, globals: make(map[types.Object]value)}
}

func (in *interp) step() error {
	in.steps++
	if in.steps > maxSteps {
		return fmt.Errorf("evaluation exceeded %d steps", maxSteps)
	}
	return nil
}

// control models statement-level control flow.
type control int

const (
	ctlNone control = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

type stmtResult struct {
	ctl control
	ret []value
}

// callFunction evaluates a function body with the given env.
func (in *interp) callBody(body *ast.BlockStmt, e *env) ([]value, error) {
	res, err := in.execBlock(body, e)
	if err != nil {
		return nil, err
	}
	if res.ctl == ctlReturn {
		return res.ret, nil
	}
	return nil, nil
}

func (in *interp) execBlock(b *ast.BlockStmt, e *env) (stmtResult, error) {
	inner := newEnv(e)
	for _, s := range b.List {
		res, err := in.execStmt(s, inner)
		if err != nil {
			return stmtResult{}, err
		}
		if res.ctl != ctlNone {
			return res, nil
		}
	}
	return stmtResult{}, nil
}

func (in *interp) execStmt(s ast.Stmt, e *env) (stmtResult, error) {
	if err := in.step(); err != nil {
		return stmtResult{}, err
	}
	switch s := s.(type) {
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return stmtResult{}, fmt.Errorf("unsupported declaration at %d", s.Pos())
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue // type or const specs need no env entries (consts fold)
			}
			for i, name := range vs.Names {
				var v value
				if i < len(vs.Values) {
					var err error
					v, err = in.evalExpr(vs.Values[i], e)
					if err != nil {
						return stmtResult{}, err
					}
				}
				e.define(in.info.Defs[name], v)
			}
		}
		return stmtResult{}, nil
	case *ast.AssignStmt:
		return stmtResult{}, in.execAssign(s, e)
	case *ast.ExprStmt:
		_, err := in.evalExpr(s.X, e)
		return stmtResult{}, err
	case *ast.IncDecStmt:
		v, err := in.evalExpr(s.X, e)
		if err != nil {
			return stmtResult{}, err
		}
		n, ok := v.(int64)
		if !ok {
			return stmtResult{}, fmt.Errorf("inc/dec of non-integer at %d", s.Pos())
		}
		if s.Tok == token.INC {
			n++
		} else {
			n--
		}
		return stmtResult{}, in.assignTo(s.X, n, e)
	case *ast.IfStmt:
		inner := newEnv(e)
		if s.Init != nil {
			if res, err := in.execStmt(s.Init, inner); err != nil || res.ctl != ctlNone {
				return res, err
			}
		}
		cond, err := in.evalExpr(s.Cond, inner)
		if err != nil {
			return stmtResult{}, err
		}
		b, ok := cond.(bool)
		if !ok {
			return stmtResult{}, fmt.Errorf("non-boolean if condition at %d", s.Pos())
		}
		if b {
			return in.execBlock(s.Body, inner)
		}
		if s.Else != nil {
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				return in.execBlock(el, inner)
			default:
				return in.execStmt(s.Else, inner)
			}
		}
		return stmtResult{}, nil
	case *ast.ForStmt:
		inner := newEnv(e)
		if s.Init != nil {
			if res, err := in.execStmt(s.Init, inner); err != nil || res.ctl != ctlNone {
				return res, err
			}
		}
		for {
			if err := in.step(); err != nil {
				return stmtResult{}, err
			}
			if s.Cond != nil {
				cond, err := in.evalExpr(s.Cond, inner)
				if err != nil {
					return stmtResult{}, err
				}
				b, ok := cond.(bool)
				if !ok {
					return stmtResult{}, fmt.Errorf("non-boolean loop condition at %d", s.Pos())
				}
				if !b {
					break
				}
			}
			res, err := in.execBlock(s.Body, inner)
			if err != nil {
				return stmtResult{}, err
			}
			if res.ctl == ctlReturn {
				return res, nil
			}
			if res.ctl == ctlBreak {
				break
			}
			if s.Post != nil {
				if res, err := in.execStmt(s.Post, inner); err != nil || res.ctl != ctlNone {
					return res, err
				}
			}
		}
		return stmtResult{}, nil
	case *ast.RangeStmt:
		return in.execRange(s, e)
	case *ast.ReturnStmt:
		var vals []value
		for _, r := range s.Results {
			v, err := in.evalExpr(r, e)
			if err != nil {
				return stmtResult{}, err
			}
			vals = append(vals, v)
		}
		if len(vals) == 1 {
			if t, ok := vals[0].(tupleVal); ok {
				vals = t.elems
			}
		}
		return stmtResult{ctl: ctlReturn, ret: vals}, nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return stmtResult{ctl: ctlBreak}, nil
		case token.CONTINUE:
			return stmtResult{ctl: ctlContinue}, nil
		}
		return stmtResult{}, fmt.Errorf("unsupported branch %s at %d", s.Tok, s.Pos())
	case *ast.BlockStmt:
		return in.execBlock(s, e)
	case *ast.EmptyStmt:
		return stmtResult{}, nil
	}
	return stmtResult{}, fmt.Errorf("unsupported statement %T at %d", s, s.Pos())
}

func (in *interp) execRange(s *ast.RangeStmt, e *env) (stmtResult, error) {
	x, err := in.evalExpr(s.X, e)
	if err != nil {
		return stmtResult{}, err
	}
	inner := newEnv(e)
	bind := func(keyObj, valObj types.Object, k, v value) {
		if keyObj != nil {
			if c, ok := inner.lookup(keyObj); ok {
				c.v = k
			} else {
				inner.define(keyObj, k)
			}
		}
		if valObj != nil {
			if c, ok := inner.lookup(valObj); ok {
				c.v = v
			} else {
				inner.define(valObj, v)
			}
		}
	}
	var keyObj, valObj types.Object
	if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = in.info.Defs[id]
	}
	if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
		valObj = in.info.Defs[id]
	}
	runBody := func(k, v value) (stmtResult, error) {
		if err := in.step(); err != nil {
			return stmtResult{}, err
		}
		bind(keyObj, valObj, k, v)
		res, err := in.execBlock(s.Body, inner)
		if err != nil {
			return stmtResult{}, err
		}
		return res, nil
	}
	switch x := x.(type) {
	case *sliceVal:
		for i, v := range x.elems {
			res, err := runBody(int64(i), v)
			if err != nil {
				return stmtResult{}, err
			}
			if res.ctl == ctlReturn {
				return res, nil
			}
			if res.ctl == ctlBreak {
				return stmtResult{}, nil
			}
		}
		return stmtResult{}, nil
	case int64: // go 1.22 range-over-int
		for i := int64(0); i < x; i++ {
			res, err := runBody(i, nil)
			if err != nil {
				return stmtResult{}, err
			}
			if res.ctl == ctlReturn {
				return res, nil
			}
			if res.ctl == ctlBreak {
				return stmtResult{}, nil
			}
		}
		return stmtResult{}, nil
	case *mapVal:
		keys := make([]string, 0, len(x.entries))
		for k := range x.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			res, err := runBody(k[2:], x.entries[k])
			if err != nil {
				return stmtResult{}, err
			}
			if res.ctl == ctlReturn {
				return res, nil
			}
			if res.ctl == ctlBreak {
				return stmtResult{}, nil
			}
		}
		return stmtResult{}, nil
	}
	return stmtResult{}, fmt.Errorf("unsupported range over %T at %d", x, s.Pos())
}

func (in *interp) execAssign(s *ast.AssignStmt, e *env) error {
	// Compound ops: x op= y.
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return fmt.Errorf("unsupported compound assign at %d", s.Pos())
		}
		cur, err := in.evalExpr(s.Lhs[0], e)
		if err != nil {
			return err
		}
		rhs, err := in.evalExpr(s.Rhs[0], e)
		if err != nil {
			return err
		}
		op, ok := compoundOps[s.Tok]
		if !ok {
			return fmt.Errorf("unsupported assign op %s at %d", s.Tok, s.Pos())
		}
		v, err := binaryOp(op, cur, rhs)
		if err != nil {
			return err
		}
		return in.assignTo(s.Lhs[0], v, e)
	}

	var vals []value
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Comma-ok map read: v, ok := m[k].
		if idx, ok := s.Rhs[0].(*ast.IndexExpr); ok && len(s.Lhs) == 2 {
			if base, err := in.evalExpr(idx.X, e); err == nil {
				if mv, isMap := base.(*mapVal); isMap {
					kVal, err := in.evalExpr(idx.Index, e)
					if err != nil {
						return err
					}
					k, err := mapKey(kVal)
					if err != nil {
						return err
					}
					v, present := mv.entries[k]
					return in.assignVals(s, []value{v, present}, e)
				}
			}
		}
		v, err := in.evalExpr(s.Rhs[0], e)
		if err != nil {
			return err
		}
		t, ok := v.(tupleVal)
		if !ok || len(t.elems) != len(s.Lhs) {
			return fmt.Errorf("multi-assign arity mismatch at %d", s.Pos())
		}
		vals = t.elems
	} else {
		for _, r := range s.Rhs {
			v, err := in.evalExpr(r, e)
			if err != nil {
				return err
			}
			if t, ok := v.(tupleVal); ok && len(s.Rhs) == 1 && len(s.Lhs) == 1 {
				v = t.elems[0]
			}
			vals = append(vals, v)
		}
	}
	return in.assignVals(s, vals, e)
}

// assignVals distributes evaluated values across the assignment's
// targets, defining new locals for := targets.
func (in *interp) assignVals(s *ast.AssignStmt, vals []value, e *env) error {
	for i, lhs := range s.Lhs {
		if s.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name == "_" {
					continue
				}
				if obj := in.info.Defs[id]; obj != nil {
					e.define(obj, vals[i])
					continue
				}
			}
		}
		if err := in.assignTo(lhs, vals[i], e); err != nil {
			return err
		}
	}
	return nil
}

// assignTo writes v through an lvalue expression.
func (in *interp) assignTo(lhs ast.Expr, v value, e *env) error {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return nil
		}
		obj := in.info.Uses[lhs]
		if obj == nil {
			obj = in.info.Defs[lhs]
		}
		if c, ok := e.lookup(obj); ok {
			c.v = v
			return nil
		}
		e.define(obj, v)
		return nil
	case *ast.SelectorExpr:
		base, err := in.evalExpr(lhs.X, e)
		if err != nil {
			return err
		}
		sv, path, err := in.fieldPath(base, lhs)
		if err != nil {
			return err
		}
		// Navigate to the second-to-last struct, then set the field.
		for i := 0; i < len(path)-1; i++ {
			next, ok := sv.fields[path[i]].(*structVal)
			if !ok {
				return fmt.Errorf("field %s is not a struct", path[i])
			}
			sv = next
		}
		sv.fields[path[len(path)-1]] = v
		return nil
	case *ast.IndexExpr:
		base, err := in.evalExpr(lhs.X, e)
		if err != nil {
			return err
		}
		idx, err := in.evalExpr(lhs.Index, e)
		if err != nil {
			return err
		}
		if base == nil {
			// Writing into a zero-valued array field (k.coeff[i] = ...):
			// materialize the backing store on first use.
			sv := &sliceVal{}
			if err := in.assignTo(lhs.X, sv, e); err != nil {
				return err
			}
			base = sv
		}
		switch b := base.(type) {
		case *sliceVal:
			i, ok := idx.(int64)
			if !ok || i < 0 {
				return fmt.Errorf("bad slice index at %d", lhs.Pos())
			}
			for int64(len(b.elems)) <= i {
				b.elems = append(b.elems, nil)
			}
			b.elems[i] = v
			return nil
		case *mapVal:
			k, err := mapKey(idx)
			if err != nil {
				return err
			}
			b.entries[k] = v
			return nil
		case nil:
			return fmt.Errorf("index into nil value at %d", lhs.Pos())
		}
		return fmt.Errorf("unsupported index target %T at %d", base, lhs.Pos())
	case *ast.StarExpr:
		return in.assignTo(lhs.X, v, e)
	}
	return fmt.Errorf("unsupported assignment target %T at %d", lhs, lhs.Pos())
}

// fieldPath resolves a selector on a struct value to the field-name
// path (through embedded fields) using the type checker's selection.
func (in *interp) fieldPath(base value, sel *ast.SelectorExpr) (*structVal, []string, error) {
	sv, ok := base.(*structVal)
	if !ok {
		return nil, nil, fmt.Errorf("selector on non-struct %T at %d", base, sel.Pos())
	}
	selection, ok := in.info.Selections[sel]
	if !ok {
		return nil, nil, fmt.Errorf("no selection info at %d", sel.Pos())
	}
	st, err := underlyingStruct(sv.typ)
	if err != nil {
		return nil, nil, err
	}
	var path []string
	for _, idx := range selection.Index() {
		f := st.Field(idx)
		path = append(path, f.Name())
		if next, err2 := underlyingStruct(f.Type()); err2 == nil {
			st = next
		}
	}
	return sv, path, nil
}

func underlyingStruct(t types.Type) (*types.Struct, error) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		case *types.Struct:
			return u, nil
		default:
			return nil, fmt.Errorf("not a struct type: %v", t)
		}
	}
}

var compoundOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD,
	token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL,
	token.QUO_ASSIGN: token.QUO,
	token.REM_ASSIGN: token.REM,
}

// ---- expressions ----

func (in *interp) evalExpr(x ast.Expr, e *env) (value, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	// The type checker already folded constants (literals, consts,
	// typedep.Kind values, sizes): use them first.
	if tv, ok := in.info.Types[x]; ok && tv.Value != nil {
		return constValue(tv.Value)
	}
	switch x := x.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return nil, nil
		}
		obj := in.info.Uses[x]
		if obj == nil {
			obj = in.info.Defs[x]
		}
		if obj == nil {
			return nil, fmt.Errorf("unresolved identifier %s at %d", x.Name, x.Pos())
		}
		if c, ok := e.lookup(obj); ok {
			return c.v, nil
		}
		// Package-level var (a name table) or function.
		return in.globalValue(obj, x)
	case *ast.ParenExpr:
		return in.evalExpr(x.X, e)
	case *ast.SelectorExpr:
		base, err := in.evalExpr(x.X, e)
		if err != nil {
			return nil, err
		}
		sv, path, err := in.fieldPath(base, x)
		if err != nil {
			return nil, err
		}
		var cur value = sv
		for _, name := range path {
			s, ok := cur.(*structVal)
			if !ok {
				return nil, fmt.Errorf("field path through non-struct at %d", x.Pos())
			}
			cur = s.fields[name]
		}
		return cur, nil
	case *ast.StarExpr:
		return in.evalExpr(x.X, e)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return in.evalExpr(x.X, e)
		case token.SUB:
			v, err := in.evalExpr(x.X, e)
			if err != nil {
				return nil, err
			}
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("unary - on %T at %d", v, x.Pos())
		case token.NOT:
			v, err := in.evalExpr(x.X, e)
			if err != nil {
				return nil, err
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("unary ! on %T at %d", v, x.Pos())
			}
			return !b, nil
		}
		return nil, fmt.Errorf("unsupported unary op %s at %d", x.Op, x.Pos())
	case *ast.BinaryExpr:
		l, err := in.evalExpr(x.X, e)
		if err != nil {
			return nil, err
		}
		// Short-circuit logic.
		if x.Op == token.LAND || x.Op == token.LOR {
			lb, ok := l.(bool)
			if !ok {
				return nil, fmt.Errorf("non-boolean operand at %d", x.Pos())
			}
			if (x.Op == token.LAND && !lb) || (x.Op == token.LOR && lb) {
				return lb, nil
			}
			return in.evalExpr(x.Y, e)
		}
		r, err := in.evalExpr(x.Y, e)
		if err != nil {
			return nil, err
		}
		return binaryOp(x.Op, l, r)
	case *ast.CompositeLit:
		return in.evalComposite(x, e)
	case *ast.IndexExpr:
		base, err := in.evalExpr(x.X, e)
		if err != nil {
			return nil, err
		}
		idx, err := in.evalExpr(x.Index, e)
		if err != nil {
			return nil, err
		}
		switch b := base.(type) {
		case *sliceVal:
			i, ok := idx.(int64)
			if !ok || i < 0 || i >= int64(len(b.elems)) {
				return nil, fmt.Errorf("slice index out of range at %d", x.Pos())
			}
			return b.elems[i], nil
		case *mapVal:
			k, err := mapKey(idx)
			if err != nil {
				return nil, err
			}
			// Comma-ok destructuring is handled in execAssign; the
			// plain read returns the value (nil for a missing key).
			return b.entries[k], nil
		case string:
			i, ok := idx.(int64)
			if !ok || i < 0 || i >= int64(len(b)) {
				return nil, fmt.Errorf("string index out of range at %d", x.Pos())
			}
			return int64(b[i]), nil
		}
		return nil, fmt.Errorf("unsupported index base %T at %d", base, x.Pos())
	case *ast.SliceExpr:
		base, err := in.evalExpr(x.X, e)
		if err != nil {
			return nil, err
		}
		sv, ok := base.(*sliceVal)
		if !ok {
			return nil, fmt.Errorf("slice of %T at %d", base, x.Pos())
		}
		lo, hi := int64(0), int64(len(sv.elems))
		if x.Low != nil {
			v, err := in.evalExpr(x.Low, e)
			if err != nil {
				return nil, err
			}
			lo, _ = v.(int64)
		}
		if x.High != nil {
			v, err := in.evalExpr(x.High, e)
			if err != nil {
				return nil, err
			}
			hi, _ = v.(int64)
		}
		if lo < 0 || hi > int64(len(sv.elems)) || lo > hi {
			return nil, fmt.Errorf("slice bounds out of range at %d", x.Pos())
		}
		return &sliceVal{elems: sv.elems[lo:hi]}, nil
	case *ast.CallExpr:
		return in.evalCall(x, e)
	case *ast.FuncLit:
		return &closureVal{lit: x, env: e}, nil
	}
	return nil, fmt.Errorf("unsupported expression %T at %d", x, x.Pos())
}

func (in *interp) evalComposite(x *ast.CompositeLit, e *env) (value, error) {
	tv, ok := in.info.Types[x]
	if !ok {
		return nil, fmt.Errorf("untyped composite literal at %d", x.Pos())
	}
	t := tv.Type
	switch t.Underlying().(type) {
	case *types.Struct:
		sv := &structVal{typ: t, fields: make(map[string]value)}
		st, err := underlyingStruct(t)
		if err != nil {
			return nil, err
		}
		for i, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					return nil, fmt.Errorf("non-ident struct key at %d", kv.Pos())
				}
				v, err := in.evalExpr(kv.Value, e)
				if err != nil {
					return nil, err
				}
				sv.fields[key.Name] = v
			} else {
				v, err := in.evalExpr(elt, e)
				if err != nil {
					return nil, err
				}
				sv.fields[st.Field(i).Name()] = v
			}
		}
		return sv, nil
	case *types.Slice, *types.Array:
		sv := &sliceVal{}
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				idxV, err := in.evalExpr(kv.Key, e)
				if err != nil {
					return nil, err
				}
				i, ok := idxV.(int64)
				if !ok {
					return nil, fmt.Errorf("bad array literal index at %d", kv.Pos())
				}
				v, err := in.evalExpr(kv.Value, e)
				if err != nil {
					return nil, err
				}
				for int64(len(sv.elems)) <= i {
					sv.elems = append(sv.elems, nil)
				}
				sv.elems[i] = v
				continue
			}
			v, err := in.evalExpr(elt, e)
			if err != nil {
				return nil, err
			}
			sv.elems = append(sv.elems, v)
		}
		if arr, ok := t.Underlying().(*types.Array); ok {
			for int64(len(sv.elems)) < arr.Len() {
				sv.elems = append(sv.elems, nil)
			}
		}
		return sv, nil
	case *types.Map:
		mv := &mapVal{entries: make(map[string]value)}
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return nil, fmt.Errorf("map literal without key at %d", elt.Pos())
			}
			kVal, err := in.evalExpr(kv.Key, e)
			if err != nil {
				return nil, err
			}
			k, err := mapKey(kVal)
			if err != nil {
				return nil, err
			}
			v, err := in.evalExpr(kv.Value, e)
			if err != nil {
				return nil, err
			}
			mv.entries[k] = v
		}
		return mv, nil
	}
	return nil, fmt.Errorf("unsupported composite literal type %v at %d", t, x.Pos())
}

// globalValue resolves package-level objects: name-table vars evaluate
// their initializer once; functions become callable values.
func (in *interp) globalValue(obj types.Object, id *ast.Ident) (value, error) {
	if v, ok := in.globals[obj]; ok {
		return v, nil
	}
	switch obj := obj.(type) {
	case *types.Var:
		for _, f := range in.files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for i, name := range vs.Names {
						if in.info.Defs[name] != obj {
							continue
						}
						if i >= len(vs.Values) {
							return nil, fmt.Errorf("package var %s has no initializer", obj.Name())
						}
						v, err := in.evalExpr(vs.Values[i], newEnv(nil))
						if err != nil {
							return nil, err
						}
						in.globals[obj] = v
						return v, nil
					}
				}
			}
		}
		return nil, fmt.Errorf("no initializer found for package var %s", obj.Name())
	case *types.Func:
		if decl := in.funcDecl(obj); decl != nil {
			v := &funcVal{decl: decl}
			in.globals[obj] = v
			return v, nil
		}
	}
	return nil, fmt.Errorf("unsupported package-level reference %s at %d", id.Name, id.Pos())
}

// funcDecl finds the AST declaration of a package function or method.
func (in *interp) funcDecl(obj *types.Func) *ast.FuncDecl {
	for _, f := range in.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if in.info.Defs[fd.Name] == obj {
				return fd
			}
		}
	}
	return nil
}

func constValue(v constant.Value) (value, error) {
	switch v.Kind() {
	case constant.Int:
		n, ok := constant.Int64Val(v)
		if !ok {
			return nil, fmt.Errorf("integer constant overflow")
		}
		return n, nil
	case constant.String:
		return constant.StringVal(v), nil
	case constant.Bool:
		return constant.BoolVal(v), nil
	case constant.Float:
		f, _ := constant.Float64Val(v)
		return f, nil
	}
	return nil, fmt.Errorf("unsupported constant kind %v", v.Kind())
}

func binaryOp(op token.Token, l, r value) (value, error) {
	// nil comparisons: ladder-era constructors branch on the errors the
	// modelled mp constructors return (`if err != nil`).
	if l == nil || r == nil {
		switch op {
		case token.EQL:
			return l == nil && r == nil, nil
		case token.NEQ:
			return !(l == nil && r == nil), nil
		}
	}
	if li, ok := l.(int64); ok {
		if ri, ok := r.(int64); ok {
			switch op {
			case token.ADD:
				return li + ri, nil
			case token.SUB:
				return li - ri, nil
			case token.MUL:
				return li * ri, nil
			case token.QUO:
				if ri == 0 {
					return nil, fmt.Errorf("division by zero")
				}
				return li / ri, nil
			case token.REM:
				if ri == 0 {
					return nil, fmt.Errorf("division by zero")
				}
				return li % ri, nil
			case token.LSS:
				return li < ri, nil
			case token.LEQ:
				return li <= ri, nil
			case token.GTR:
				return li > ri, nil
			case token.GEQ:
				return li >= ri, nil
			case token.EQL:
				return li == ri, nil
			case token.NEQ:
				return li != ri, nil
			}
		}
	}
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			switch op {
			case token.ADD:
				return ls + rs, nil
			case token.EQL:
				return ls == rs, nil
			case token.NEQ:
				return ls != rs, nil
			case token.LSS:
				return ls < rs, nil
			}
		}
	}
	if lb, ok := l.(bool); ok {
		if rb, ok := r.(bool); ok {
			switch op {
			case token.EQL:
				return lb == rb, nil
			case token.NEQ:
				return lb != rb, nil
			}
		}
	}
	if lv, ok := l.(varID); ok {
		if rv, ok := r.(varID); ok {
			switch op {
			case token.EQL:
				return lv == rv, nil
			case token.NEQ:
				return lv != rv, nil
			}
		}
	}
	if lf, lok := toFloat(l); lok {
		if rf, rok := toFloat(r); rok {
			switch op {
			case token.ADD:
				return lf + rf, nil
			case token.SUB:
				return lf - rf, nil
			case token.MUL:
				return lf * rf, nil
			case token.QUO:
				return lf / rf, nil
			case token.LSS:
				return lf < rf, nil
			case token.LEQ:
				return lf <= rf, nil
			case token.GTR:
				return lf > rf, nil
			case token.GEQ:
				return lf >= rf, nil
			case token.EQL:
				return lf == rf, nil
			case token.NEQ:
				return lf != rf, nil
			}
		}
	}
	return nil, fmt.Errorf("unsupported binary %s on %T and %T", op, l, r)
}

func toFloat(v value) (float64, bool) {
	switch v := v.(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	}
	return 0, false
}
