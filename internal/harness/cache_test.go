package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/telemetry"
)

// cacheCampaign runs the telemetry campaign with the given worker count
// and run cache, returning the results, the metrics exposition, and the
// event stream.
func cacheCampaign(t *testing.T, workers int, cache *bench.Cache) ([]JobResult, string, []telemetry.Event) {
	t.Helper()
	mem := telemetry.NewMemorySink()
	tel := telemetry.New(mem)
	results := Scheduler{Workers: workers, Telemetry: tel, Cache: cache}.Run(telemetryJobs(t))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return results, buf.String(), mem.Events()
}

// TestSchedulerCacheDeterministic locks in the shared cache's determinism
// contract: a campaign with the cache produces byte-identical reports,
// metric snapshots, and event streams to one without it, under any worker
// count. Run under -race with Workers > 1 it also locks in the cache's
// data-race-free claim.
func TestSchedulerCacheDeterministic(t *testing.T) {
	var firstCachedMetrics string
	for _, workers := range []int{1, 2, 8} {
		baseResults, baseMetrics, baseEvents := cacheCampaign(t, workers, nil)
		results, metrics, events := cacheCampaign(t, workers, bench.NewCache(nil))
		if !reflect.DeepEqual(results, baseResults) {
			t.Errorf("workers=%d: cached campaign reports diverge from the uncached baseline", workers)
		}
		if metrics != baseMetrics {
			t.Errorf("workers=%d: cached metric snapshot diverges:\n--- uncached ---\n%s\n--- cached ---\n%s",
				workers, baseMetrics, metrics)
		}
		// The event stream is identical payload for payload (campaign_start
		// names the worker count, so streams are compared per count).
		if !reflect.DeepEqual(events, baseEvents) {
			t.Errorf("workers=%d: cached event stream diverges (%d vs %d events)",
				workers, len(events), len(baseEvents))
		}
		// And the cached campaign keeps the existing cross-worker-count
		// snapshot invariant.
		if firstCachedMetrics == "" {
			firstCachedMetrics = metrics
		} else if metrics != firstCachedMetrics {
			t.Errorf("workers=%d: cached metric snapshot depends on worker count", workers)
		}
	}
}

// TestSchedulerCacheCounters checks the cache's own instrumentation over a
// real campaign: hit/miss totals are campaign-determined (misses = distinct
// executions, hits+misses = total run calls) and therefore identical under
// any worker count, the bench-labelled counters reach the cache's recorder,
// and hits emit runcache_hit events.
func TestSchedulerCacheCounters(t *testing.T) {
	type totals struct{ hits, misses uint64 }
	runWith := func(workers int) (totals, *telemetry.MemorySink) {
		mem := telemetry.NewMemorySink()
		cache := bench.NewCache(telemetry.New(mem))
		results := Scheduler{Workers: workers, Cache: cache}.Run(telemetryJobs(t))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
		}
		s := cache.Stats()
		if s.Misses == 0 || s.Hits == 0 {
			t.Fatalf("workers=%d: cache saw no traffic: %+v", workers, s)
		}
		if s.Entries != s.Misses {
			t.Fatalf("workers=%d: entries (%d) != misses (%d)", workers, s.Entries, s.Misses)
		}
		return totals{s.Hits, s.Misses}, mem
	}

	t1, mem := runWith(1)
	t8, _ := runWith(8)
	if t1 != t8 {
		t.Errorf("hit/miss totals depend on worker count: 1 worker %+v, 8 workers %+v", t1, t8)
	}

	// The cache's recorder carries the bench-labelled counters and the
	// per-hit events.
	cacheTel := telemetry.New(nil)
	cache := bench.NewCache(cacheTel)
	Scheduler{Workers: 2, Cache: cache}.Run(telemetryJobs(t))
	var buf bytes.Buffer
	if err := cacheTel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mixpbench_runcache_hits_total{bench="K-means"}`,
		`mixpbench_runcache_misses_total{bench="K-means"}`,
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("cache metrics missing %q in:\n%s", want, text)
		}
	}
	hits := 0
	for _, e := range mem.Events() {
		if e.Name == "runcache_hit" {
			hits++
			if e.Fields["bench"] != "K-means" {
				t.Errorf("runcache_hit fields = %v", e.Fields)
			}
		}
	}
	if hits == 0 {
		t.Error("no runcache_hit events emitted")
	}
}

// TestRunCampaignCacheDefault checks RunCampaign's wiring: caching is on
// by default, NoCache turns it off, and reports are identical either way.
func TestRunCampaignCacheDefault(t *testing.T) {
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunCampaign(specs, CampaignOptions{Workers: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cache := bench.NewCache(nil)
	explicit, err := RunCampaign(specs, CampaignOptions{Workers: 2, Seed: 42, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := RunCampaign(specs, CampaignOptions{Workers: 2, Seed: 42, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, uncached) || !reflect.DeepEqual(explicit, uncached) {
		t.Error("campaign reports depend on the cache setting")
	}
	if s := cache.Stats(); s.Misses == 0 {
		t.Error("explicitly provided cache was not used")
	}
}
