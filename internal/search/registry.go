package search

import (
	"fmt"
	"strings"
)

// AlgorithmNames lists the six strategies in the order the paper's tables
// use: CB, CM, DD, HR, HC, GA.
var AlgorithmNames = []string{"CB", "CM", "DD", "HR", "HC", "GA"}

// ExtensionNames lists strategies beyond the paper's six, available
// through the same registry but excluded from the table regenerations.
var ExtensionNames = []string{"GP"}

// ByName constructs the named strategy. The GA is the only randomised
// strategy; seed drives it and is ignored by the others.
func ByName(name string, seed int64) (Algorithm, error) {
	switch name {
	case "CB":
		return Combinational{}, nil
	case "CM":
		return Compositional{}, nil
	case "DD":
		return DeltaDebug{}, nil
	case "HR":
		return Hierarchical{}, nil
	case "HC":
		return HierComp{}, nil
	case "GA":
		return NewGenetic(seed), nil
	case "GP":
		return GreedyProfile{}, nil
	default:
		return nil, fmt.Errorf("search: unknown algorithm %q (valid: %s)", name, ValidAlgorithmList())
	}
}

// ValidAlgorithmList renders every accepted strategy abbreviation - the
// paper's six plus the extension strategies - as one comma-separated
// string for error messages, so a typo'd name comes back with the full
// menu instead of an echo.
func ValidAlgorithmList() string {
	names := make([]string, 0, len(AlgorithmNames)+len(ExtensionNames))
	names = append(names, AlgorithmNames...)
	names = append(names, ExtensionNames...)
	return strings.Join(names, ", ")
}
