package harness

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestResumeErrorPaths is the satellite table test: every way a resume
// can be refused - journal fingerprint mismatch, journal version skew,
// not a journal at all, wrong job count, and a result store opened
// against the wrong fingerprint or read-only on a missing directory -
// must produce a DISTINCT sentinel (errors.Is) and an actionable
// message, so an operator can tell "re-run the campaign" apart from
// "wrong file" apart from "wrong machine model" without reading source.
func TestResumeErrorPaths(t *testing.T) {
	dir := t.TempDir()

	// A good journal to mutate per case.
	goodPath := filepath.Join(dir, "good.jsonl")
	j, err := CreateJournal(goodPath, "cafe", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	writeVariant := func(name, old, new string) string {
		p := filepath.Join(dir, name)
		if !strings.Contains(string(good), old) {
			t.Fatalf("journal header missing %q: %s", old, good)
		}
		mutated := strings.Replace(string(good), old, new, 1)
		if err := os.WriteFile(p, []byte(mutated), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// A good store to mis-open per case.
	storeDir := filepath.Join(dir, "results")
	st, err := store.Open(storeDir, store.Options{Fingerprint: 0xaaaa})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		attempt  func() error
		sentinel error
		// notSentinels: the other sentinels this error must NOT match,
		// proving the cases are distinct.
		notSentinels []error
		wantMsg      []string
	}{
		{
			name: "journal fingerprint mismatch",
			attempt: func() error {
				p := writeVariant("fp.jsonl", `"fingerprint":"cafe"`, `"fingerprint":"beef"`)
				_, err := ReadJournal(p, "cafe", 4)
				return err
			},
			sentinel:     ErrJournalFingerprint,
			notSentinels: []error{ErrJournalVersion, ErrJournalFormat, ErrJournalJobs},
			wantMsg:      []string{"beef", "cafe", "config, seed, or fault plan"},
		},
		{
			name: "journal version skew",
			attempt: func() error {
				p := writeVariant("ver.jsonl", `"version":2`, `"version":99`)
				_, err := ReadJournal(p, "cafe", 4)
				return err
			},
			sentinel:     ErrJournalVersion,
			notSentinels: []error{ErrJournalFingerprint, ErrJournalFormat, ErrJournalJobs},
			wantMsg:      []string{"version 99", "this build reads 2"},
		},
		{
			name: "journal job count mismatch",
			attempt: func() error {
				_, err := ReadJournal(goodPath, "cafe", 7)
				return err
			},
			sentinel:     ErrJournalJobs,
			notSentinels: []error{ErrJournalFingerprint, ErrJournalVersion, ErrJournalFormat},
			wantMsg:      []string{"4 jobs", "campaign has 7"},
		},
		{
			name: "not a journal",
			attempt: func() error {
				p := filepath.Join(dir, "noise.jsonl")
				if err := os.WriteFile(p, []byte("hello world\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				_, err := ReadJournal(p, "cafe", 4)
				return err
			},
			sentinel:     ErrJournalFormat,
			notSentinels: []error{ErrJournalFingerprint, ErrJournalVersion, ErrJournalJobs},
			wantMsg:      []string{"not a campaign journal"},
		},
		{
			name: "empty journal",
			attempt: func() error {
				p := filepath.Join(dir, "empty.jsonl")
				if err := os.WriteFile(p, nil, 0o644); err != nil {
					t.Fatal(err)
				}
				_, err := ReadJournal(p, "cafe", 4)
				return err
			},
			sentinel:     ErrJournalFormat,
			notSentinels: []error{ErrJournalFingerprint, ErrJournalVersion, ErrJournalJobs},
			wantMsg:      []string{"empty"},
		},
		{
			name: "store fingerprint mismatch",
			attempt: func() error {
				_, err := store.Open(storeDir, store.Options{Fingerprint: 0xbbbb})
				return err
			},
			sentinel:     store.ErrFingerprint,
			notSentinels: []error{store.ErrVersion, store.ErrReadOnly},
			wantMsg:      []string{"000000000000aaaa", "000000000000bbbb", "fresh store directory"},
		},
		{
			name: "store read-only on missing directory",
			attempt: func() error {
				_, err := store.Open(filepath.Join(dir, "absent"), store.Options{Fingerprint: 0xaaaa, ReadOnly: true})
				return err
			},
			sentinel:     nil, // plain error: nothing to disambiguate from
			notSentinels: []error{store.ErrFingerprint, store.ErrVersion},
			wantMsg:      []string{"absent"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.attempt()
			if err == nil {
				t.Fatal("attempt succeeded, want refusal")
			}
			if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
				t.Errorf("error %q does not match its sentinel %q", err, tc.sentinel)
			}
			for _, not := range tc.notSentinels {
				if errors.Is(err, not) {
					t.Errorf("error %q also matches foreign sentinel %q - cases are not distinct", err, not)
				}
			}
			for _, want := range tc.wantMsg {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}
