// Package emitorder is the orderedemit fixture: map ranges feeding
// ordered outputs are flagged unless a sort intervenes.
package emitorder

import (
	"fmt"
	"io"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys collects map keys or values but is never sorted`
	}
	return keys
}

func badEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `Fprintf call inside map iteration`
	}
}

func badSend(ch chan<- string, m map[string]bool) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodSliceRange(w io.Writer, xs []string) {
	// Ranging over a slice is ordered; emitting inside is fine.
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
