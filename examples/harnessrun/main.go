// Harnessrun: drive the YAML harness exactly as the paper's Listing 4
// does - a configuration file describes the benchmark, its build and run
// commands, the verification metric, and the analysis to apply; the
// harness deploys everything and reports the analysis results.
//
//	go run ./examples/harnessrun
package main

import (
	"fmt"
	"log"
	"math"

	mixpbench "repro"
)

// config is the paper's K-means harness entry (Listing 4) plus a second
// entry showing a different benchmark, algorithm, and threshold in the
// same campaign.
const config = `
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'

hotspot:
  build_dir: 'hotspot'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'genetic'
        threshold: 1e-6
  output:
    option: '-o'
    name: 'output.out'
  metric: 'MAE'
  bin: 'hotspot'
  copy: ['hotspot', 'temp_1024', 'power_1024']
  args: '1024 1024 2 4 temp_1024 power_1024'
`

func main() {
	specs, err := mixpbench.ParseHarnessConfig(config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d harness entries\n", len(specs))
	for _, s := range specs {
		fmt.Printf("  %-8s -> bin=%s metric=%v algorithm=%s threshold=%.0e\n",
			s.Name, s.Bin, s.Metric, s.Analysis.Algorithm, s.Analysis.Threshold)
	}

	// Attach a telemetry recorder so the campaign's metrics can be
	// inspected afterwards; the snapshot is byte-identical for any
	// Workers value.
	tel := mixpbench.NewTelemetry(mixpbench.NewMemorySink())
	reports, err := mixpbench.RunHarnessWith(specs, mixpbench.HarnessOptions{
		Workers:   2,
		Telemetry: tel,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanalysis reports:")
	for _, r := range reports {
		quality := fmt.Sprintf("%.3g", r.Quality)
		if math.IsNaN(r.Quality) {
			quality = "NaN"
		}
		fmt.Printf("  %-12s %s @ %.0e: speedup %.3fx, quality %s, evaluated %d, demoted %d/%d\n",
			r.Benchmark, r.Algorithm, r.Threshold, r.Speedup, quality,
			r.Evaluated, r.Demoted, r.Variables)
	}

	fmt.Println("\ncampaign metrics:")
	snap := tel.Snapshot()
	for _, c := range snap.Counters {
		fmt.Printf("  %s%s = %g\n", c.Name, c.Labels, c.Value)
	}
}
