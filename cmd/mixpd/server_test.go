package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
)

// campaignYAML is a two-job campaign over the kmeans kernel.
const campaignYAML = `
kmeans-dd:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
kmeans-gp:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'greedy'
        threshold: 1e-3
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
`

// postCampaign submits the fixture campaign and returns its status.
func postCampaign(t *testing.T, ts *httptest.Server, query string) engine.Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns"+query, "application/yaml", strings.NewReader(campaignYAML))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /campaigns: status %d", resp.StatusCode)
	}
	var st engine.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("POST /campaigns: empty id")
	}
	return st
}

// getJSON decodes one JSON GET response into v, returning the status code.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// waitDone polls a campaign's status until it is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) engine.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st engine.Status
		if code := getJSON(t, ts.URL+"/campaigns/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET /campaigns/%s: status %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return engine.Status{}
}

// baselineRecords runs the fixture campaign directly through the
// harness: the bytes the service must reproduce.
func baselineRecords(t *testing.T, workers int) string {
	t.Helper()
	specs, err := harness.ParseConfig(campaignYAML)
	if err != nil {
		t.Fatal(err)
	}
	results, err := harness.RunCampaign(specs, harness.CampaignOptions{Workers: workers, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]harness.JournalRecord, len(results))
	for i, jr := range results {
		recs[i] = harness.ResultRecord(jr, specs[i].Name)
	}
	b, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServerCampaignLifecycle drives one campaign through the full API:
// submit, status, results (byte-identical to the harness baseline),
// metrics, SSE events, and idempotent cancel-after-done.
func TestServerCampaignLifecycle(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, serverOptions{}))
	defer ts.Close()

	st := postCampaign(t, ts, "?seed=42&name=lifecycle")
	if st.Name != "lifecycle" {
		t.Errorf("name %q, want lifecycle", st.Name)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != engine.StateDone {
		t.Fatalf("state %s, want done (err %q)", final.State, final.Error)
	}
	if final.Completed != final.Jobs || final.Jobs != 2 {
		t.Errorf("completed %d/%d, want 2/2", final.Completed, final.Jobs)
	}

	var recs []harness.JournalRecord
	if code := getJSON(t, ts.URL+"/campaigns/"+st.ID+"/results", &recs); code != http.StatusOK {
		t.Fatalf("results: status %d", code)
	}
	got, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if want := baselineRecords(t, 2); string(got) != want {
		t.Errorf("served records diverge from harness baseline:\n--- harness ---\n%s\n--- served ---\n%s", want, got)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body[:n]), "mixpbench_harness_jobs_total") {
		t.Errorf("metrics: status %d, body lacks harness counters", resp.StatusCode)
	}

	events := readSSE(t, ts.URL+"/campaigns/"+st.ID+"/events")
	if len(events) == 0 {
		t.Fatal("SSE stream carried no events")
	}
	if events[0] != "campaign_start" || events[len(events)-1] != "campaign_end" {
		t.Errorf("event stream ends %q...%q, want campaign_start...campaign_end", events[0], events[len(events)-1])
	}

	// Cancel after completion is a no-op that still reports the status.
	resp, err = http.Post(ts.URL+"/campaigns/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cancel done campaign: status %d", resp.StatusCode)
	}
	if st, _ := eng.Status(st.ID); st.State != engine.StateDone {
		t.Errorf("cancel after done flipped state to %s", st.State)
	}
}

// readSSE consumes a campaign's SSE stream to the final "done" frame
// and returns the telemetry event names in order.
func readSSE(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var names []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		name, ok := strings.CutPrefix(line, "event: ")
		if !ok {
			continue
		}
		if name == "done" {
			return names
		}
		names = append(names, name)
	}
	t.Fatalf("SSE stream ended without a done frame (%v)", sc.Err())
	return nil
}

// TestServerTwoTenantsCancelOne is the service acceptance path: two
// concurrent campaigns share one engine (and run cache), one is
// canceled over the API mid-flight, and the survivor's results stay
// byte-identical to a solo harness run.
func TestServerTwoTenantsCancelOne(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2, MaxConcurrent: 2})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, serverOptions{}))
	defer ts.Close()

	victim := postCampaign(t, ts, "?seed=42&name=victim")
	survivor := postCampaign(t, ts, "?seed=42&name=survivor")
	resp, err := http.Post(ts.URL+"/campaigns/"+victim.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	vfinal := waitDone(t, ts, victim.ID)
	if vfinal.State != engine.StateCanceled && vfinal.State != engine.StateDone {
		t.Fatalf("victim state %s", vfinal.State)
	}
	sfinal := waitDone(t, ts, survivor.ID)
	if sfinal.State != engine.StateDone {
		t.Fatalf("survivor state %s, want done (err %q)", sfinal.State, sfinal.Error)
	}
	var recs []harness.JournalRecord
	getJSON(t, ts.URL+"/campaigns/"+survivor.ID+"/results", &recs)
	got, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if want := baselineRecords(t, 2); string(got) != want {
		t.Error("survivor records diverge from solo baseline after neighbor cancellation")
	}
}

// TestServerBackpressure fills the engine's queue and checks the 429
// and 503 answers.
func TestServerBackpressure(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1, MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(newServer(eng, serverOptions{}))
	defer ts.Close()

	// Occupy the only dispatcher with a campaign whose first completed
	// job blocks until released, then fill the single queue slot.
	release := make(chan struct{})
	hc, err := harness.ParseCampaign(campaignYAML)
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := eng.SubmitCampaign(hc, engine.SubmitOptions{
		Seed:      42,
		OnJobDone: func(int, harness.JobResult) { <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := eng.Status(blocker)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == engine.StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	postCampaign(t, ts, "?seed=42") // fills the queue slot

	resp, err := http.Post(ts.URL+"/campaigns", "application/yaml", strings.NewReader(campaignYAML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)
	if err := eng.Drain(nil); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/campaigns", "application/yaml", strings.NewReader(campaignYAML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
}

// TestServerErrors covers the 4xx paths.
func TestServerErrors(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, serverOptions{}))
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/campaigns/c9999", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", code)
	}
	resp, err := http.Post(ts.URL+"/campaigns/c9999/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown campaign: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/campaigns", "application/yaml", strings.NewReader("not: [valid"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad YAML: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/campaigns?workers=-1", "application/yaml", strings.NewReader(campaignYAML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative workers: status %d, want 400", resp.StatusCode)
	}
	big := strings.Repeat("#", maxCampaignBytes+2)
	resp, err = http.Post(ts.URL+"/campaigns", "application/yaml", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}

// TestServerSIGTERMDrains boots the real server loop on an ephemeral
// port and checks a SIGTERM drains it to a clean exit.
func TestServerSIGTERMDrains(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run("127.0.0.1:0", 1, 1, 1, 30, false, false, true, "") }()
	// Give run() time to install its signal handler; before that a
	// SIGTERM would kill the test process outright.
	time.Sleep(250 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}

// TestValidateServeFlags rejects nonsense flag values.
func TestValidateServeFlags(t *testing.T) {
	for _, bad := range [][4]int{{-1, 1, 1, 1}, {0, -1, 1, 1}, {0, 1, -1, 1}, {0, 1, 1, -1}} {
		err := run("127.0.0.1:0", bad[0], bad[1], bad[2], bad[3], false, false, true, "")
		if err == nil {
			t.Errorf("run accepted flags %v", bad)
		}
	}
}
