// Package mp implements the HPC-MixPBench mixed-precision runtime.
//
// The paper's runtime library wraps memory allocation and file IO so that a
// program whose variables have been demoted from double to single precision
// still allocates, reads, and writes data of the right width (the mp_malloc,
// mp_fread, and mp_fwrite calls of Listing 3). This package is the Go
// equivalent, with one addition made necessary by the reproduction strategy:
// instead of recompiling a program per precision configuration, benchmarks
// execute once against a Tape that carries the configuration. Every
// assignment to a variable that the configuration demotes is rounded
// through the narrow format, which is exactly the numeric behaviour of a
// source-level type demotion (arithmetic evaluates in the wide type, the
// store narrows).
//
// The Tape also meters the work a real mixed-precision binary would perform
// - floating-point operations per precision, memory traffic per element
// width, and casts introduced at precision boundaries - so that the
// perfmodel package can reconstruct execution time for the machine the paper
// evaluated on.
package mp

import "fmt"

// Prec identifies a floating-point format. The paper's study restricts
// itself to the two levels supported by Typeforge's refactoring (IEEE-754
// binary64 and binary32); the runtime generalizes the axis to a ladder of
// formats (see Ladder): binary16, bfloat16, and parameterized-mantissa
// custom formats following "Floating-point autotuning with customized
// precisions" (PAPERS.md).
//
// The four named formats are small enum values; a custom format encodes
// its exponent and mantissa widths directly in the value (see Custom), so
// a Prec is self-describing with no registry - two processes agree on the
// meaning of every value, which the content-addressed run cache and the
// durable result store rely on.
type Prec uint16

const (
	// F64 is IEEE-754 double precision, the precision every benchmark
	// starts from.
	F64 Prec = iota
	// F32 is IEEE-754 single precision, the demotion target of the
	// paper's study.
	F32
	// F16 is IEEE-754 half precision (binary16), the extension level the
	// paper motivates for accelerators; the paper-table regenerations
	// never assign it.
	F16
	// BF16 is bfloat16: the truncated-significand single-precision format
	// of ML accelerators (8 exponent bits, 7 mantissa bits). Narrower
	// than F16 in precision, wider in range.
	BF16
)

// customFlag marks a Prec value as a parameterized custom format; the
// exponent width lives in bits 8-11 and the mantissa width in bits 0-7.
const customFlag Prec = 0x1000

// Custom returns the parameterized-mantissa format with e exponent bits
// (2..11) and m mantissa bits (1..52) - the truncated-precision model of
// CRAFT-style customized-precision autotuning. The format's values are a
// subset of float64, rounding is round-to-nearest-even at m+1 significant
// bits with IEEE overflow and subnormal handling, and storage is charged
// at the smallest container width (2, 4, or 8 bytes) that fits 1+e+m
// bits.
func Custom(e, m int) (Prec, error) {
	if e < 2 || e > 11 {
		return 0, fmt.Errorf("mp: custom format exponent width %d out of range [2,11]", e)
	}
	if m < 1 || m > 52 {
		return 0, fmt.Errorf("mp: custom format mantissa width %d out of range [1,52]", m)
	}
	return customFlag | Prec(e)<<8 | Prec(m), nil
}

// MustCustom is Custom for statically known widths; it panics on a bad
// width.
func MustCustom(e, m int) Prec {
	p, err := Custom(e, m)
	if err != nil {
		panic(err)
	}
	return p
}

// IsCustom reports whether p is a parameterized custom format.
func (p Prec) IsCustom() bool { return p&customFlag != 0 }

// ExpBits returns the format's exponent field width in bits.
func (p Prec) ExpBits() int {
	switch p {
	case F64:
		return 11
	case F32, BF16:
		return 8
	case F16:
		return 5
	}
	return int(p>>8) & 0xF
}

// MantBits returns the format's mantissa (fraction) field width in bits.
func (p Prec) MantBits() int {
	switch p {
	case F64:
		return 52
	case F32:
		return 23
	case F16:
		return 10
	case BF16:
		return 7
	}
	return int(p & 0xFF)
}

// Size returns the storage width of one value of this format in bytes:
// the format's container. Custom formats occupy the smallest power-of-two
// container that fits their 1+e+m bits, the truncated-mantissa model
// (arithmetic and storage run at container width, precision is narrowed).
func (p Prec) Size() uint64 {
	switch p {
	case F32:
		return 4
	case F16, BF16:
		return 2
	case F64:
		return 8
	}
	bits := 1 + p.ExpBits() + p.MantBits()
	switch {
	case bits <= 16:
		return 2
	case bits <= 32:
		return 4
	default:
		return 8
	}
}

// wclass maps the format onto its width class - the index of the cost
// counters (Flops64/32/16, Bytes64/32/16) and perf-model rates it is
// metered under: 0 for 8-byte, 1 for 4-byte, 2 for 2-byte containers.
// Custom formats charge at their container class (a truncated-mantissa
// format executes on container-width hardware).
func (p Prec) wclass() int {
	switch p.Size() {
	case 4:
		return 1
	case 2:
		return 2
	default:
		return 0
	}
}

// widerPrec reports whether a is strictly wider than b. Width is ordered
// by mantissa bits (the precision a value keeps), with exponent bits
// breaking ties; for the built-in formats this coincides with the enum
// order F64 < F32 < F16 < BF16 (widest first), which the fast path
// exploits. Expression precision under Assign follows this order: the
// arithmetic runs at the widest operand's format.
func widerPrec(a, b Prec) bool {
	if a|b < customFlag {
		return a < b // built-in enum order is widest-first
	}
	am, bm := a.MantBits(), b.MantBits()
	if am != bm {
		return am > bm
	}
	return a.ExpBits() > b.ExpBits()
}

// Round narrows x to the format p. For F64 this is the identity; for the
// narrow formats the value is rounded to nearest-even at the format's
// precision, including overflow to infinity and subnormal handling.
//
// The F64 identity is the common case on every hot path (the original
// program and every non-demoted variable), so it is split out where the
// compiler can inline it; narrowing goes through roundNarrow.
func (p Prec) Round(x float64) float64 {
	if p == F64 {
		return x
	}
	return p.roundNarrow(x)
}

// roundNarrow narrows x for the non-identity formats.
func (p Prec) roundNarrow(x float64) float64 {
	switch p {
	case F32:
		return float64(float32(x))
	case F16:
		return roundToHalf(x)
	case BF16:
		return roundToBfloat(x)
	}
	return roundBinary(x, p.ExpBits(), p.MantBits())
}

// String implements fmt.Stringer using the paper's names for the levels.
func (p Prec) String() string {
	switch p {
	case F64:
		return "double"
	case F32:
		return "single"
	case F16:
		return "half"
	case BF16:
		return "bfloat16"
	}
	if p.IsCustom() {
		return fmt.Sprintf("custom(%d,%d)", p.ExpBits(), p.MantBits())
	}
	return fmt.Sprintf("Prec(%d)", uint16(p))
}

// Name returns the format's short spelling, the one ladder clauses and
// -precisions flags use: f64, f32, f16, bf16, or custom(e,m).
func (p Prec) Name() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case F16:
		return "f16"
	case BF16:
		return "bf16"
	}
	if p.IsCustom() {
		return fmt.Sprintf("custom(%d,%d)", p.ExpBits(), p.MantBits())
	}
	return fmt.Sprintf("Prec(%d)", uint16(p))
}

// VarID names one tunable program location (a variable, parameter, or
// pointer in the source-level view). IDs are dense indices assigned by a
// benchmark's variable declaration order, so a precision configuration is a
// simple slice indexed by VarID.
type VarID int
