// Command mptables regenerates every table and figure of the paper's
// evaluation section: Table I (kernel inventory), Table II (Typeforge
// complexity), Table III (kernel study), Table IV (manual single
// conversion), Table V (application study at three thresholds), and
// Figures 2a, 2b, and 3 (as CSV plus ASCII scatter plots).
//
// Usage:
//
//	mptables [-workers N] [-kernels-only] [-out DIR]
//
// With -out, each artifact is also written to DIR as a separate file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/report"
)

// artifact is one named regeneration output.
type artifact struct {
	name    string
	content string
}

// buildArtifacts assembles every artifact the study supports: the static
// tables always, the application tables, figures, and comparison only for
// a full campaign.
func buildArtifacts(study *report.Study, kernelsOnly bool) []artifact {
	out := []artifact{
		{"table1.txt", report.TableI()},
		{"table2.txt", report.TableII()},
		{"table3.txt", study.TableIII()},
	}
	if !kernelsOnly {
		out = append(out,
			artifact{"table4.txt", study.TableIV()},
			artifact{"table5.txt", study.TableV()},
			artifact{"figure2a.csv", study.Figure2a()},
			artifact{"figure2b.csv", study.Figure2b()},
			artifact{"figure3.csv", study.Figure3()},
			artifact{"comparison.md", study.Compare()},
		)
	}
	return out
}

func main() {
	var (
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		kernelsOnly = flag.Bool("kernels-only", false, "regenerate only Tables I-III (fast)")
		outDir      = flag.String("out", "", "also write each artifact to this directory")
	)
	flag.Parse()

	progress := func(msg string) { fmt.Fprintln(os.Stderr, "mptables:", msg) }
	study := report.Run(report.Options{
		Workers:     *workers,
		KernelsOnly: *kernelsOnly,
		Progress:    progress,
	})

	for _, a := range buildArtifacts(study, *kernelsOnly) {
		fmt.Println(a.content)
		fmt.Println()
		if *outDir != "" {
			path := filepath.Join(*outDir, a.name)
			if err := os.WriteFile(path, []byte(a.content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "mptables:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "mptables: wrote", path)
		}
	}
}
