package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/mp"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// ladderJobs builds the telemetry campaign over a three-rung ladder with
// the Pareto objective: the same three algorithms, each now descending to
// bfloat16 and recording a time/energy/error front.
func ladderJobs(t *testing.T) []Job {
	t.Helper()
	ladder, err := mp.ParseLadder("f64,f32,bf16")
	if err != nil {
		t.Fatal(err)
	}
	jobs := telemetryJobs(t)
	for i := range jobs {
		jobs[i].Spec.Analysis.Precisions = ladder
		jobs[i].Spec.Analysis.Objective = search.ObjectivePareto
	}
	return jobs
}

// evalLadderCampaign is evalCampaign over the ladder jobs.
func evalLadderCampaign(t *testing.T, workers int, interpreted bool, cache *bench.Cache, comp *compile.Compiler) ([]JobResult, string, []telemetry.Event) {
	t.Helper()
	mem := telemetry.NewMemorySink()
	tel := telemetry.New(mem)
	s := Scheduler{Workers: workers, Telemetry: tel, Cache: cache, Interpreted: interpreted, Compiler: comp}
	results := s.Run(ladderJobs(t))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return results, buf.String(), mem.Events()
}

// TestSchedulerLadderCompiledEquivalence extends the compiled/interpreted
// byte-identity contract to deep-ladder Pareto campaigns: a three-rung
// bfloat16 campaign produces identical reports (fronts and energies
// included), metric snapshots, and event streams whether configurations
// execute through compiled kernels or interpreted tapes, at any worker
// count, with the run cache off or on. Run under -race with Workers > 1
// it also covers the shared caches under ladder keys.
func TestSchedulerLadderCompiledEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		baseResults, baseMetrics, baseEvents := evalLadderCampaign(t, workers, true, nil, nil)

		for _, r := range baseResults {
			if r.Report.Precisions != "f64,f32,bf16" {
				t.Fatalf("workers=%d: report precisions = %q", workers, r.Report.Precisions)
			}
			if r.Report.Objective != "pareto" {
				t.Fatalf("workers=%d: report objective = %q", workers, r.Report.Objective)
			}
			if len(r.Report.Front) == 0 {
				t.Fatalf("workers=%d: pareto campaign produced an empty front", workers)
			}
		}

		comp := compile.New(nil)
		results, metrics, events := evalLadderCampaign(t, workers, false, nil, comp)
		if !reflect.DeepEqual(results, baseResults) {
			t.Errorf("workers=%d: compiled ladder reports diverge from interpreted", workers)
		}
		if metrics != baseMetrics {
			t.Errorf("workers=%d: compiled ladder metric snapshot diverges", workers)
		}
		if !reflect.DeepEqual(events, baseEvents) {
			t.Errorf("workers=%d: compiled ladder event stream diverges", workers)
		}
		if s := comp.Stats(); s.Kernels == 0 || s.Misses == 0 {
			t.Fatalf("workers=%d: ladder campaign never compiled a kernel: %+v", workers, s)
		}

		results, metrics, events = evalLadderCampaign(t, workers, false, bench.NewCache(nil), compile.New(nil))
		if !reflect.DeepEqual(results, baseResults) || metrics != baseMetrics || !reflect.DeepEqual(events, baseEvents) {
			t.Errorf("workers=%d: compiled+cache ladder campaign diverges from interpreted", workers)
		}
	}
}

// TestLadderCampaignWorkerInvariance locks the Pareto front's
// scheduler-level determinism: the same ladder campaign at 1 and 8
// workers yields deeply equal reports - per-point time, energy, and
// error included - so the front is a campaign artifact, not a scheduling
// accident.
func TestLadderCampaignWorkerInvariance(t *testing.T) {
	run := func(workers int) []JobResult {
		results := Scheduler{Workers: workers}.Run(ladderJobs(t))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
		}
		return results
	}
	one, eight := run(1), run(8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("ladder campaign reports differ between 1 and 8 workers")
	}
	for i, r := range one {
		if r.Report.Energy <= 0 {
			t.Errorf("job %d: energy = %g, want > 0", i, r.Report.Energy)
		}
		// kmeans demotions can verify with exactly zero error, in which
		// case one point legitimately dominates the whole front -
		// reference included - so only non-emptiness is guaranteed.
		if len(r.Report.Front) == 0 {
			t.Errorf("job %d: pareto campaign produced an empty front", i)
		}
		for _, p := range r.Report.Front {
			if p.Time <= 0 || p.Energy <= 0 {
				t.Errorf("job %d: front point %s has non-positive time/energy", i, p.Config)
			}
		}
	}
}
