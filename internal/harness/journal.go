package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strconv"
	"sync"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// The checkpoint journal is a JSONL file: a header line identifying the
// campaign, then one fsync'd record per completed job, appended as jobs
// finish (so record order follows completion, not submission - readers
// key by job index). A campaign killed mid-flight leaves a journal whose
// records are exactly the jobs that completed; resuming from it re-runs
// only the rest and merges the recorded telemetry as if the interruption
// never happened.

// journalMagic identifies a journal header line.
const journalMagic = "mixpbench-campaign"

// journalVersion is bumped on incompatible record changes. Version 2
// added per-phase accounting (build/run seconds, evaluation and memo-hit
// counts) to reports and attempts so traces rebuild identically on
// resume.
const journalVersion = 2

// journalHeader is the journal's first line.
type journalHeader struct {
	Journal string `json:"journal"`
	Version int    `json:"version"`
	// Fingerprint ties the journal to one campaign definition; resuming
	// under a different config, seed, or fault plan is refused rather
	// than silently mixing incompatible results.
	Fingerprint string `json:"fingerprint"`
	// Jobs is the campaign's job count.
	Jobs int `json:"jobs"`
}

// JournalRecord is one completed job: its report, attempt history, and
// the job's private telemetry (metrics snapshot plus event buffer), which
// resume folds back into the campaign stream.
type JournalRecord struct {
	// Job is the job's index in campaign submission order.
	Job      int       `json:"job"`
	Entry    string    `json:"entry"`
	Error    string    `json:"error,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
	Attempts []Attempt `json:"attempts,omitempty"`
	// Report is the job's report in a JSON-safe form (NaN metrics encode
	// as strings, the precision config as its digit key).
	Report journalReport `json:"report"`
	// Metrics is the job's private registry snapshot.
	Metrics telemetry.Snapshot `json:"metrics,omitempty"`
	// Events is the job's private event buffer (non-finite floats
	// stringified, as in the JSONL event sink).
	Events []telemetry.Event `json:"events,omitempty"`
}

// jfloat is a float64 whose JSON form survives NaN and infinities by
// falling back to Prometheus-style strings ("NaN", "+Inf", "-Inf").
type jfloat float64

// MarshalJSON encodes finite values as numbers, the rest as strings.
func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.Marshal(formatNonFinite(v))
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts either encoding.
func (f *jfloat) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = jfloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("harness: journal float %s: %w", b, err)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("harness: journal float %q: %w", s, err)
	}
	*f = jfloat(v)
	return nil
}

// formatNonFinite matches the telemetry exposition's spelling of
// non-finite values.
func formatNonFinite(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return "NaN"
}

// journalReport is Report in JSON-safe clothing.
type journalReport struct {
	Benchmark    string  `json:"benchmark"`
	Algorithm    string  `json:"algorithm"`
	Threshold    float64 `json:"threshold"`
	Evaluated    int     `json:"evaluated"`
	SpentSeconds float64 `json:"spent_seconds"`
	BuildSeconds float64 `json:"build_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
	CacheHits    int     `json:"cache_hits,omitempty"`
	Speedup      jfloat  `json:"speedup"`
	Quality      jfloat  `json:"quality"`
	Found        bool    `json:"found"`
	TimedOut     bool    `json:"timed_out"`
	Canceled     bool    `json:"canceled,omitempty"`
	Demoted      int     `json:"demoted"`
	Energy       jfloat  `json:"energy,omitempty"`
	Precisions   string  `json:"precisions,omitempty"`
	Objective    string  `json:"objective,omitempty"`
	// Front is the Pareto front under the pareto objective; its points
	// never carry non-finite values (NaN-error points are excluded at
	// recording time), so plain floats are JSON-safe.
	Front []search.ParetoPoint `json:"front,omitempty"`
	// Config is the precision assignment as its key (one symbol per
	// variable; "" when the analysis converged to nothing).
	Config    string `json:"config,omitempty"`
	Clusters  int    `json:"clusters"`
	Variables int    `json:"variables"`
}

// toJournalReport converts a Report for journalling.
func toJournalReport(r Report) journalReport {
	j := journalReport{
		Benchmark:    r.Benchmark,
		Algorithm:    r.Algorithm,
		Threshold:    r.Threshold,
		Evaluated:    r.Evaluated,
		SpentSeconds: r.SpentSeconds,
		BuildSeconds: r.BuildSeconds,
		RunSeconds:   r.RunSeconds,
		CacheHits:    r.CacheHits,
		Speedup:      jfloat(r.Speedup),
		Quality:      jfloat(r.Quality),
		Found:        r.Found,
		TimedOut:     r.TimedOut,
		Canceled:     r.Canceled,
		Demoted:      r.Demoted,
		Energy:       jfloat(r.Energy),
		Precisions:   r.Precisions,
		Front:        r.Front,
		Clusters:     r.Clusters,
		Variables:    r.Variables,
	}
	// The default threshold objective stays off the wire, so default
	// campaigns journal exactly the historical record shape.
	if r.Objective != "" && r.Objective != "threshold" {
		j.Objective = r.Objective
	}
	if r.Config != nil {
		j.Config = r.Config.Key()
	}
	return j
}

// report converts back; the precision config is rebuilt from its key.
func (j journalReport) report() Report {
	r := Report{
		Benchmark:    j.Benchmark,
		Algorithm:    j.Algorithm,
		Threshold:    j.Threshold,
		Evaluated:    j.Evaluated,
		SpentSeconds: j.SpentSeconds,
		BuildSeconds: j.BuildSeconds,
		RunSeconds:   j.RunSeconds,
		CacheHits:    j.CacheHits,
		Speedup:      float64(j.Speedup),
		Quality:      float64(j.Quality),
		Found:        j.Found,
		TimedOut:     j.TimedOut,
		Canceled:     j.Canceled,
		Demoted:      j.Demoted,
		Energy:       float64(j.Energy),
		Precisions:   j.Precisions,
		Objective:    j.Objective,
		Front:        j.Front,
		Clusters:     j.Clusters,
		Variables:    j.Variables,
	}
	if r.Objective == "" {
		r.Objective = "threshold"
	}
	if j.Config != "" {
		cfg, err := bench.ParseKey(j.Config)
		if err == nil {
			r.Config = cfg
		}
	}
	return r
}

// ResultRecord converts one job result into its JSON-safe journal form
// (telemetry excluded): the shape the checkpoint journal writes and the
// campaign service serves over HTTP. entry names the configuration entry
// the job came from.
func ResultRecord(jr JobResult, entry string) JournalRecord {
	rec := JournalRecord{
		Job:      jr.Index,
		Entry:    entry,
		Degraded: jr.Degraded,
		Attempts: jr.Attempts,
		Report:   toJournalReport(jr.Report),
	}
	if jr.Err != nil {
		rec.Error = jr.Err.Error()
	}
	return rec
}

// result rebuilds the scheduler result a resumed record stands in for.
func (rec JournalRecord) result(idx int) JobResult {
	jr := JobResult{
		Index:    idx,
		Report:   rec.Report.report(),
		Attempts: rec.Attempts,
		Degraded: rec.Degraded,
	}
	if rec.Error != "" {
		jr.Err = errors.New(rec.Error)
	}
	return jr
}

// CampaignFingerprint identifies a campaign definition: the specs that
// shape its jobs, the workload seed, and the fault plan. Resume refuses a
// journal whose fingerprint differs, since its records would describe
// different work.
func CampaignFingerprint(specs []Spec, seed int64, plan faults.Plan) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d|transient=%g|crash=%g|straggler=%g|slowdown=%g|window=%d|fseed=%d",
		seed, plan.Transient, plan.Crash, plan.Straggler, plan.Slowdown, plan.Window, plan.Seed)
	for _, s := range specs {
		fmt.Fprintf(h, "|%s|%s|%s|%g", s.Name, s.Bin, s.Analysis.Algorithm, s.Analysis.Threshold)
		// Non-default ladders and objectives change the work a journal's
		// records describe, so they join the fingerprint; default specs
		// hash exactly the historical bytes and old journals stay
		// resumable.
		if s.Analysis.Precisions != nil {
			fmt.Fprintf(h, "|precisions=%s", s.Analysis.Precisions)
		}
		if s.Analysis.Objective != search.ObjectiveThreshold {
			fmt.Fprintf(h, "|objective=%s", s.Analysis.Objective)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Journal appends completed-job records to a checkpoint file, fsyncing
// each one so a killed campaign loses at most the in-flight jobs. Safe
// for concurrent Append from scheduler workers. Write errors are held and
// surfaced by Close, keeping the hot path non-fatal: a full disk degrades
// checkpointing, not the campaign.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// CreateJournal starts a fresh journal at path (truncating any previous
// one) with a fingerprint header for jobs jobs. The parent directory is
// fsync'd after the create - the same discipline the result store uses -
// so a journal created moments before a crash is guaranteed to have a
// directory entry; without it, the first fsync'd records could belong to
// a file that vanishes with the power.
func CreateJournal(path, fingerprint string, jobs int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: create journal: %w", err)
	}
	if err := store.SyncParentDir(path); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: sync journal directory: %w", err)
	}
	j := &Journal{f: f}
	if err := j.writeLocked(journalHeader{
		Journal: journalMagic, Version: journalVersion, Fingerprint: fingerprint, Jobs: jobs,
	}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// AppendJournal reopens an existing journal for appending, after checking
// its header matches the campaign. This is the checkpoint==resume path: an
// interrupted campaign keeps extending the same file.
func AppendJournal(path, fingerprint string, jobs int) (*Journal, error) {
	if err := checkJournalHeader(path, fingerprint, jobs); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: append journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append journals one record.
func (j *Journal) Append(rec JournalRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.writeLocked(rec)
}

// writeLocked marshals v as one line and fsyncs. Callers hold j.mu or
// own j exclusively.
func (j *Journal) writeLocked(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: journal encode: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("harness: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("harness: journal sync: %w", err)
	}
	return nil
}

// Close closes the file and reports the first error the journal swallowed.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	cerr := j.f.Close()
	if j.err != nil {
		return j.err
	}
	return cerr
}

// Sentinel errors for resume failures, for errors.Is. Each names a
// distinct, actionable condition; the wrapped message says which file,
// which values clashed, and what to do about it.
var (
	// ErrJournalFormat reports a file that is not a campaign journal at
	// all (wrong magic, unparsable or empty header).
	ErrJournalFormat = errors.New("harness: not a campaign journal")
	// ErrJournalVersion reports a journal written by an incompatible
	// version of this tool.
	ErrJournalVersion = errors.New("harness: incompatible journal version")
	// ErrJournalFingerprint reports a journal recorded for a different
	// campaign definition (config, seed, or fault plan changed).
	ErrJournalFingerprint = errors.New("harness: journal fingerprint mismatch")
	// ErrJournalJobs reports a journal recorded for a different job count.
	ErrJournalJobs = errors.New("harness: journal job count mismatch")
)

// checkJournalHeader validates path's header line against the campaign.
func checkJournalHeader(path, fingerprint string, jobs int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("harness: open journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return fmt.Errorf("%w: %s is empty", ErrJournalFormat, path)
	}
	var h journalHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return fmt.Errorf("%w: %s: bad header: %v", ErrJournalFormat, path, err)
	}
	switch {
	case h.Journal != journalMagic:
		return fmt.Errorf("%w: %s", ErrJournalFormat, path)
	case h.Version != journalVersion:
		return fmt.Errorf("%w: %s is version %d, this build reads %d; re-run the campaign or resume with the build that wrote it",
			ErrJournalVersion, path, h.Version, journalVersion)
	case h.Fingerprint != fingerprint:
		return fmt.Errorf("%w: %s was recorded under %s, this campaign is %s; the config, seed, or fault plan changed - resume with the original definition or start fresh",
			ErrJournalFingerprint, path, h.Fingerprint, fingerprint)
	case h.Jobs != jobs:
		return fmt.Errorf("%w: %s has %d jobs, campaign has %d", ErrJournalJobs, path, h.Jobs, jobs)
	}
	return nil
}

// ReadJournal loads the completed-job records of a checkpoint journal,
// keyed by job index. Only cleanly completed jobs (no error) are
// returned: failed and degraded jobs are re-run on resume, which - faults
// being a pure function of (seed, job, attempt) - reproduces their
// recorded outcome if nothing changed. A torn final line (the campaign
// was killed mid-append, before the fsync completed) is ignored; garbage
// anywhere else is an error.
func ReadJournal(path, fingerprint string, jobs int) (map[int]JournalRecord, error) {
	if err := checkJournalHeader(path, fingerprint, jobs); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	sc.Scan() // header, validated above

	recs := make(map[int]JournalRecord)
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// The bad line was not the last one: real corruption.
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("harness: journal %s: bad record: %w", path, err)
			continue
		}
		if rec.Job < 0 || rec.Job >= jobs {
			return nil, fmt.Errorf("harness: journal %s: record for job %d outside campaign of %d jobs",
				path, rec.Job, jobs)
		}
		if rec.Error != "" {
			delete(recs, rec.Job) // re-run failed jobs; a later clean record may still win
			continue
		}
		recs[rec.Job] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: read journal: %w", err)
	}
	return recs, nil
}
