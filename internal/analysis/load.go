package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked, in-module package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Module is the loaded repo: every in-module package plus the export
// map that lets testdata packages type-check against real repo imports.
type Module struct {
	Root     string // directory containing go.mod
	Path     string // module path from go.mod ("repro")
	Fset     *token.FileSet
	Packages []*Package // in-module, sorted by import path

	exports  map[string]string // import path -> export data file
	importer types.ImporterFrom
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load type-checks every in-module package (tests excluded). It shells
// out to `go list -deps -export` once, which compiles the module into
// the build cache and yields export data for every dependency; each
// in-module package is then re-parsed from source (with comments, so
// suppression directives survive) and type-checked against that export
// data. This works offline with an empty module cache, which is why the
// framework avoids golang.org/x/tools: the repo's go.mod stays
// dependency-free.
func Load(root string) (*Module, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-e",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Error", "./...")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}

	m := &Module{
		Root:    root,
		Path:    modPath,
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	var local []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s does not build: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			m.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && (p.ImportPath == modPath || strings.HasPrefix(p.ImportPath, modPath+"/")) {
			pp := p
			local = append(local, &pp)
		}
	}
	m.importer = importer.ForCompiler(m.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := m.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)

	sort.Slice(local, func(i, j int) bool { return local[i].ImportPath < local[j].ImportPath })
	for _, lp := range local {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := m.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		m.Packages = append(m.Packages, pkg)
	}
	return m, nil
}

// LoadDir parses and type-checks an out-of-tree directory (an
// analysistest testdata package) against the module's export data, so
// fixtures can import real repo packages like repro/internal/mp.
func (m *Module) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return m.check(importPath, dir, files)
}

// check parses the given files and type-checks them as one package.
func (m *Module) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(m.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: m.importer}
	tpkg, err := conf.Check(importPath, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		PkgPath:   importPath,
		Dir:       dir,
		GoFiles:   filenames,
		Fset:      m.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// modulePath reads the module directive from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// MatchPattern reports whether a package path matches a go-style
// pattern: either an exact path or a prefix ending in "/..." ("p/..."
// also matches "p" itself, like the go tool).
func MatchPattern(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return pattern == path
}
