// Package ctxconv is the ctxfirst fixture.
package ctxconv

import "context"

func badPosition(n int, ctx context.Context) { _ = n; _ = ctx } // want `context.Context must be the first parameter \(found at position 2\)`

func badDropped(_ context.Context, n int) { _ = n } // want `context parameter is dropped`

type badHolder struct {
	ctx context.Context // want `context.Context stored in a struct`
}

func badRemint(ctx context.Context) context.Context {
	return context.Background() // want `context.Background inside a function that already receives a context`
}

func badLit() func(context.Context) {
	return func(ctx context.Context) {
		_ = context.TODO() // want `context.TODO inside a function that already receives a context`
	}
}

func good(ctx context.Context, n int) { _ = ctx; _ = n }

func goodGuard(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

func goodRoot() context.Context {
	// No incoming context: minting a root one here is the job of
	// top-level entry points.
	return context.Background()
}
