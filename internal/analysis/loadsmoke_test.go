package analysis

import "testing"

func TestLoadSmoke(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("module %s: %d packages", m.Path, len(m.Packages))
	for _, p := range m.Packages {
		if p.Types == nil {
			t.Errorf("%s: nil types", p.PkgPath)
		}
	}
}
