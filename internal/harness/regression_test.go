package harness_test

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/suite"
)

// goldenPath holds the pre-refactor snapshot of every default-ladder
// (two-level {f64,f32}) evaluation surface. The file was generated at the
// commit introducing the precision ladder, BEFORE any ladder code landed,
// so the test proves the ladder refactor left the paper's two-level study
// bit-identical. Regenerate only on an intentional numeric change:
//
//	MIXP_UPDATE_GOLDEN=1 go test ./internal/harness -run TestDefaultLadderGolden
const goldenPath = "testdata/default_ladder.json"

// bitsHex renders a float64 as its exact bit pattern, so the golden file
// is byte-stable and diffs point at real numeric drift, not formatting.
func bitsHex(f float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(f))
}

// hashFloats folds a float slice into one FNV-1a word over the raw bits.
func hashFloats(vals []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runGolden is one Result projected onto the fields that existed before
// the ladder refactor (new additive fields are deliberately absent, so
// the comparison pins the pre-refactor surface only).
type runGolden struct {
	Output   string     `json:"output"`
	Cost     [10]uint64 `json:"cost"`
	Profile  string     `json:"profile"`
	Model    string     `json:"model"`
	Mean     string     `json:"mean"`
	Total    string     `json:"total"`
	Runs     int        `json:"runs"`
	Profiled int        `json:"profiled"`
}

// jobGolden is one campaign job report projected the same way.
type jobGolden struct {
	Entry     string `json:"entry"`
	Algorithm string `json:"algorithm"`
	Evaluated int    `json:"evaluated"`
	Spent     string `json:"spent"`
	Build     string `json:"build"`
	Run       string `json:"run"`
	CacheHits int    `json:"cache_hits"`
	Speedup   string `json:"speedup"`
	Quality   string `json:"quality"`
	Found     bool   `json:"found"`
	TimedOut  bool   `json:"timed_out"`
	Demoted   int    `json:"demoted"`
	Config    string `json:"config"`
	Clusters  int    `json:"clusters"`
	Variables int    `json:"variables"`
}

type defaultLadderGolden struct {
	Runs     map[string]map[string]runGolden `json:"runs"`
	Campaign []jobGolden                     `json:"campaign"`
}

func projectResult(r bench.Result) runGolden {
	c := r.Cost
	var prof []float64
	for _, p := range r.Profile {
		prof = append(prof, float64(p.Bytes), float64(p.Flops), float64(p.Casts))
	}
	return runGolden{
		Output: hashFloats(r.Output.Values),
		Cost: [10]uint64{
			c.Flops64, c.Flops32, c.Flops16, c.Casts,
			c.Bytes64, c.Bytes32, c.Bytes16,
			c.Footprint64, c.Footprint32, c.Footprint16,
		},
		Profile:  hashFloats(prof),
		Model:    bitsHex(r.ModelTime),
		Mean:     bitsHex(r.Measured.Mean),
		Total:    bitsHex(r.Measured.Total),
		Runs:     r.Measured.Runs,
		Profiled: len(r.Profile),
	}
}

func projectReport(entry string, r harness.Report) jobGolden {
	cfgKey := ""
	if r.Config != nil {
		cfgKey = r.Config.Key()
	}
	return jobGolden{
		Entry:     entry,
		Algorithm: r.Algorithm,
		Evaluated: r.Evaluated,
		Spent:     bitsHex(r.SpentSeconds),
		Build:     bitsHex(r.BuildSeconds),
		Run:       bitsHex(r.RunSeconds),
		CacheHits: r.CacheHits,
		Speedup:   bitsHex(r.Speedup),
		Quality:   bitsHex(r.Quality),
		Found:     r.Found,
		TimedOut:  r.TimedOut,
		Demoted:   r.Demoted,
		Config:    cfgKey,
		Clusters:  r.Clusters,
		Variables: r.Variables,
	}
}

// computeDefaultLadderGolden executes the whole pre-refactor surface:
// every port through Run / RunIR / RunManualSingle at representative
// two-level configurations, plus the kernel campaign (10 kernels x 6
// algorithms) through the scheduler at the given worker count.
func computeDefaultLadderGolden(t *testing.T, workers int) defaultLadderGolden {
	t.Helper()
	g := defaultLadderGolden{Runs: make(map[string]map[string]runGolden)}

	for _, b := range suite.All() {
		r := bench.NewRunner(42)
		n := b.Graph().NumVars()
		alt := bench.NewConfig(n)
		for i := 0; i < n; i += 2 {
			alt[i] = 1 // F32 in the default ladder
		}
		entry := map[string]runGolden{
			"reference":    projectResult(r.Reference(b)),
			"all-single":   projectResult(r.Run(b, bench.AllSingle(n))),
			"alternating":  projectResult(r.Run(b, alt)),
			"ir-single":    projectResult(r.RunIR(b, bench.AllSingle(n))),
			"manual":       projectResult(r.RunManualSingle(b)),
			"ir-reference": projectResult(r.RunIR(b, nil)),
		}
		g.Runs[b.Name()] = entry
	}

	var specs []harness.Spec
	for _, k := range suite.Kernels() {
		for _, algo := range []string{"CB", "CM", "DD", "HR", "HC", "GA"} {
			specs = append(specs, harness.Spec{
				Name:   k.Name() + "/" + algo,
				Bin:    k.Name(),
				Metric: k.Metric(),
				Analysis: harness.AnalysisSpec{
					ID:        "floatsmith",
					Name:      "floatSmith",
					Algorithm: algo,
					Threshold: 1e-8,
				},
			})
		}
	}
	results, err := harness.RunCampaign(specs, harness.CampaignOptions{Workers: workers, Seed: 42})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d (%s): %v", i, specs[i].Name, jr.Err)
		}
		g.Campaign = append(g.Campaign, projectReport(specs[i].Name, jr.Report))
	}
	return g
}

// TestDefaultLadderGolden locks default-ladder campaigns byte-identical
// to the pre-refactor seed output: all 17 ports through every evaluation
// entry point and the full kernel campaign must project onto exactly the
// snapshot taken before the precision-ladder refactor, at more than one
// worker count.
func TestDefaultLadderGolden(t *testing.T) {
	got := computeDefaultLadderGolden(t, 2)

	if os.Getenv("MIXP_UPDATE_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with MIXP_UPDATE_GOLDEN=1 go test ./internal/harness -run TestDefaultLadderGolden): %v", err)
	}
	var want defaultLadderGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	for name, wantRuns := range want.Runs {
		gotRuns, ok := got.Runs[name]
		if !ok {
			t.Errorf("%s: benchmark missing from suite", name)
			continue
		}
		for label, w := range wantRuns {
			if g, ok := gotRuns[label]; !ok || g != w {
				t.Errorf("%s/%s: result drifted from pre-refactor golden\n got: %+v\nwant: %+v", name, label, g, w)
			}
		}
	}
	if len(got.Campaign) != len(want.Campaign) {
		t.Fatalf("campaign produced %d jobs, golden has %d", len(got.Campaign), len(want.Campaign))
	}
	for i := range want.Campaign {
		if got.Campaign[i] != want.Campaign[i] {
			t.Errorf("job %d: report drifted from pre-refactor golden\n got: %+v\nwant: %+v", i, got.Campaign[i], want.Campaign[i])
		}
	}

	// Worker-count invariance of the same projection: the golden holds at
	// any pool size, not just the one it was generated with.
	if !testing.Short() {
		at4 := computeDefaultLadderGolden(t, 4)
		for i := range want.Campaign {
			if at4.Campaign[i] != want.Campaign[i] {
				t.Errorf("job %d: workers=4 report diverges from golden", i)
			}
		}
	}
}
