GO ?= go

.PHONY: build test race verify cover tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the gate for every change: vet plus the full test suite under
# the race detector (the telemetry determinism tests require -race to mean
# anything).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

tables:
	$(GO) run ./cmd/mptables
