package mp

// Array is a dynamically allocated floating-point buffer owned by one
// tunable variable. It is the reproduction of the paper's mp_malloc:
// the buffer's element width follows the precision the active configuration
// assigns to its variable, so demoting the variable halves both the
// working-set footprint and the traffic of every access.
//
// Values are stored as float64 for uniform access, but every store narrows
// through the variable's precision first, so a single-precision array holds
// exactly the values a real float buffer would.
type Array struct {
	tape *Tape
	v    VarID
	data []float64
}

// NewArray allocates an n-element buffer for variable v and charges its
// footprint at the width the configuration assigns to v.
func (t *Tape) NewArray(v VarID, n int) *Array {
	bytes := uint64(n) * t.storageWidth(v).Size() * t.scale
	switch t.storageWidth(v) {
	case F32:
		t.cost.Footprint32 += bytes
	case F16:
		t.cost.Footprint16 += bytes
	default:
		t.cost.Footprint64 += bytes
	}
	return &Array{tape: t, v: v, data: make([]float64, n)}
}

// Len returns the number of elements.
func (a *Array) Len() int { return len(a.data) }

// Var returns the tunable variable that owns the buffer.
func (a *Array) Var() VarID { return a.v }

// Prec reports the element precision under the active configuration.
func (a *Array) Prec() Prec { return a.tape.prec[a.v] }

// Get loads element i, charging one element of read traffic.
func (a *Array) Get(i int) float64 {
	a.charge(1)
	return a.data[i]
}

// Set stores x into element i, narrowing to the array's precision and
// charging one element of write traffic.
func (a *Array) Set(i int, x float64) {
	a.charge(1)
	a.data[i] = a.tape.prec[a.v].Round(x)
}

// Fill stores x into every element (one rounding, n elements of traffic).
func (a *Array) Fill(x float64) {
	a.charge(uint64(len(a.data)))
	r := a.tape.prec[a.v].Round(x)
	for i := range a.data {
		a.data[i] = r
	}
}

// Snapshot returns a copy of the buffer contents without charging traffic.
// Verification reads output buffers through Snapshot so that measuring
// quality does not perturb the cost of the run being measured.
func (a *Array) Snapshot() []float64 {
	out := make([]float64, len(a.data))
	copy(out, a.data)
	return out
}

// charge records n elements of traffic at the array's current width.
func (a *Array) charge(n uint64) {
	p := a.tape.storageWidth(a.v)
	bytes := n * p.Size() * a.tape.scale
	switch p {
	case F32:
		a.tape.cost.Bytes32 += bytes
	case F16:
		a.tape.cost.Bytes16 += bytes
	default:
		a.tape.cost.Bytes64 += bytes
	}
	a.tape.attributeBytes(a.v, bytes)
}
