package harness

import (
	"fmt"
	"runtime"
	"sync"
)

// Scheduler fans analysis jobs out over a pool of workers, reproducing the
// paper's setup: "the harness offloads the search for each combination of
// an application/algorithm to a separate node" of the cluster. One worker
// stands in for one node; results come back in job order regardless of
// completion order, so harness output is deterministic.
type Scheduler struct {
	// Workers is the pool size (simulated node count). Zero means
	// GOMAXPROCS.
	Workers int
}

// JobResult pairs a job's report with its error, positionally aligned
// with the submitted jobs.
type JobResult struct {
	Report Report
	Err    error
}

// Run executes all jobs and returns their results in submission order.
func (s Scheduler) Run(jobs []Job) []JobResult {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	type task struct {
		idx int
		job Job
	}
	queue := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				results[t.idx] = runOne(t.job)
			}
		}()
	}
	for i, j := range jobs {
		queue <- task{idx: i, job: j}
	}
	close(queue)
	wg.Wait()
	return results
}

// runOne resolves and executes a single job, converting panics from
// misdeclared benchmarks into errors so one bad entry cannot take down a
// whole campaign.
func runOne(job Job) (jr JobResult) {
	defer func() {
		if r := recover(); r != nil {
			jr.Err = fmt.Errorf("harness: job %s/%s panicked: %v",
				job.Spec.Name, job.Spec.Analysis.Algorithm, r)
		}
	}()
	plugin, err := LookupAnalysis(job.Spec.Analysis.Name)
	if err != nil {
		return JobResult{Err: err}
	}
	rep, err := plugin.Analyze(job)
	return JobResult{Report: rep, Err: err}
}

// JobsFromSpecs resolves each spec's benchmark and builds one job per
// spec with the given workload seed.
func JobsFromSpecs(specs []Spec, seed int64) ([]Job, error) {
	jobs := make([]Job, 0, len(specs))
	for _, s := range specs {
		b, err := s.Resolve()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{Spec: s, Benchmark: b, Seed: seed})
	}
	return jobs, nil
}
