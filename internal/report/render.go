package report

import (
	"fmt"
	"math"
	"math/big"
	"strings"

	"repro/internal/mp"
	"repro/internal/suite"
	"repro/internal/typedep"
)

// TableI renders the kernel inventory (paper Table I).
func TableI() string {
	var b strings.Builder
	b.WriteString("Table I: Kernels included in HPC-MixPBench\n\n")
	w := newTextTable("Name", "Description")
	for _, k := range suite.Kernels() {
		w.row(k.Name(), k.Description())
	}
	b.WriteString(w.String())
	return b.String()
}

// TableII renders the Typeforge complexity inventory (paper Table II):
// Total Variables and Total Clusters per benchmark, plus the resulting
// two-level search-space sizes (the paper's p^loc with p=2) showing how
// much the clustering compresses each program's space.
func TableII() string {
	var b strings.Builder
	b.WriteString("Table II: Total Variables (TV) and Total Clusters (TC) identified by the\n")
	b.WriteString("type-dependence analysis as possible transformations, with the two-level\n")
	b.WriteString("search-space sizes they induce (2^TV raw, 2^TC after clustering)\n\n")
	w := newTextTable("Kind", "Name", "TV", "TC", "2^TV", "2^TC")
	for _, k := range suite.Kernels() {
		w.row(tableIIRow("kernel", k)...)
	}
	for _, a := range suite.Apps() {
		w.row(tableIIRow("application", a)...)
	}
	b.WriteString(w.String())
	return b.String()
}

// tableIIRow assembles one Table II row, rendering astronomically large
// spaces in scientific notation.
func tableIIRow(kind string, b interface {
	Name() string
	Graph() *typedep.Graph
}) []string {
	g := b.Graph()
	return []string{
		kind, b.Name(),
		fmt.Sprint(g.NumVars()), fmt.Sprint(g.NumClusters()),
		spaceSize(len(mp.DefaultLadder()), g.NumVars()),
		spaceSize(len(mp.DefaultLadder()), g.NumClusters()),
	}
}

// spaceSize formats p^n compactly for a p-rung ladder: exact up to 2^20
// (the historical table threshold), scientific above. Table II is the
// paper's two-level inventory, so its callers pass the default ladder's
// length; campaign-scoped renderings pass their own ladder's.
func spaceSize(levels, n int) string {
	size := typedep.SearchSpaceSize(levels, n)
	if size.Cmp(big.NewInt(1<<20)) <= 0 {
		return size.String()
	}
	f := new(big.Float).SetInt(size)
	return fmt.Sprintf("%.1e", f)
}

// TableIII renders the kernel study (paper Table III): quality (in units
// of 1e-9), evaluated configurations, and speedup per kernel and
// algorithm.
func (s *Study) TableIII() string {
	var b strings.Builder
	b.WriteString("Table III: Evaluation results of kernel codes (threshold 1e-8)\n")
	b.WriteString("Quality reported in units of 1e-9; EV = evaluated configurations; SU = speedup\n\n")
	for _, section := range []string{"Quality(1e-9)", "Evaluated Configs", "Speedup"} {
		b.WriteString(section + "\n")
		w := newTextTable(append([]string{"Application"}, KernelAlgorithms...)...)
		for _, k := range suite.Kernels() {
			cells := []string{k.Name()}
			for _, algo := range KernelAlgorithms {
				r := s.Kernel[k.Name()][algo]
				switch section {
				case "Quality(1e-9)":
					cells = append(cells, formatQuality(r.Quality, 1e-9))
				case "Evaluated Configs":
					cells = append(cells, fmt.Sprint(r.Evaluated))
				default:
					cells = append(cells, fmt.Sprintf("%.2f", r.Speedup))
				}
			}
			w.row(cells...)
		}
		b.WriteString(w.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TableIV renders the manual whole-program conversion study (paper Table
// IV).
func (s *Study) TableIV() string {
	var b strings.Builder
	b.WriteString("Table IV: Application speedup and quality loss when comparing single- to\n")
	b.WriteString("double-precision executions (manual whole-program conversion)\n\n")
	w := newTextTable("Application", "Speed Up", "Quality Metric", "Quality Loss")
	for _, a := range suite.Apps() {
		row := s.Conversion[a.Name()]
		loss := "NaN"
		if !math.IsNaN(row.QualityLoss) {
			loss = fmt.Sprintf("%.2E", row.QualityLoss)
		}
		w.row(row.App, fmt.Sprintf("%.2f", row.Speedup), row.Metric.String(), loss)
	}
	b.WriteString(w.String())
	return b.String()
}

// TableV renders the application study (paper Table V) for every
// threshold: speedup, evaluated configurations, and quality per
// application and algorithm; timed-out analyses render as empty cells.
func (s *Study) TableV() string {
	var b strings.Builder
	b.WriteString("Table V: Evaluation results of the applications at quality thresholds\n")
	b.WriteString("1e-3, 1e-6, 1e-8 (empty cells: no result within the 24-hour budget)\n\n")
	for _, th := range AppThresholds {
		for _, section := range []string{"Speedup", "Evaluated Configs", "Quality"} {
			fmt.Fprintf(&b, "%s (threshold %s)\n", section, formatThreshold(th))
			w := newTextTable(append([]string{"Application"}, AppAlgorithms...)...)
			for _, a := range suite.Apps() {
				cells := []string{a.Name()}
				for _, algo := range AppAlgorithms {
					r := s.App[th][a.Name()][algo]
					if !CellFilled(r) {
						cells = append(cells, "")
						continue
					}
					switch section {
					case "Speedup":
						cells = append(cells, fmt.Sprintf("%.2f", r.Speedup))
					case "Evaluated Configs":
						cells = append(cells, fmt.Sprint(r.Evaluated))
					default:
						cells = append(cells, formatQuality(r.Quality, 1))
					}
				}
				w.row(cells...)
			}
			b.WriteString(w.String())
			b.WriteString("\n")
		}
	}
	return b.String()
}

// formatQuality renders an error value in the given unit; exact zero stays
// "0" and NaN marks destroyed output.
func formatQuality(q, unit float64) string {
	switch {
	case math.IsNaN(q):
		return "NaN"
	case q == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3g", q/unit)
	}
}

// formatThreshold renders 1e-3 style threshold labels.
func formatThreshold(th float64) string {
	return fmt.Sprintf("1e%d", int(math.Round(math.Log10(th))))
}

// textTable lays out aligned columns.
type textTable struct {
	header []string
	rows   [][]string
}

func newTextTable(header ...string) *textTable {
	return &textTable{header: header}
}

func (t *textTable) row(cells ...string) {
	if len(cells) != len(t.header) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

func (t *textTable) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := len(t.header)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
