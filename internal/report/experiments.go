// Package report regenerates every table and figure of the paper's
// evaluation (Section IV): Table I (kernel inventory), Table II
// (Typeforge complexity), Table III (kernel study), Table IV (manual
// whole-program conversion), Table V (application study at three quality
// thresholds), and the data series behind Figures 2a, 2b, and 3.
//
// The canonical experiment parameters live here so the CLI, the Go
// benchmarks, and the tests all regenerate identical artifacts.
package report

import (
	"context"
	"math"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/mp"
	"repro/internal/suite"
	"repro/internal/verify"
)

// Canonical experiment parameters.
const (
	// Seed drives every workload and the GA's randomness.
	Seed = 42
	// KernelThreshold is the kernel study's quality bound (Section
	// IV-B.1: "We set the quality threshold to be 1e-8").
	KernelThreshold = 1e-8
)

// AppThresholds are the application study's quality bounds (Section
// IV-B.2), loosest first as in Table V.
var AppThresholds = []float64{1e-3, 1e-6, 1e-8}

// KernelAlgorithms lists the strategies of Table III, in column order.
var KernelAlgorithms = []string{"CB", "CM", "DD", "HR", "HC", "GA"}

// AppAlgorithms lists the strategies of Table V: the combinational search
// is excluded because the application spaces are beyond exhaustive search.
var AppAlgorithms = []string{"CM", "DD", "HR", "HC", "GA"}

// Study holds one full regeneration of the evaluation.
type Study struct {
	// Kernel maps kernel name -> algorithm -> report (Table III).
	Kernel map[string]map[string]harness.Report
	// App maps threshold -> application name -> algorithm -> report
	// (Table V).
	App map[float64]map[string]map[string]harness.Report
	// Conversion holds the manual whole-program single-precision results
	// (Table IV), keyed by application name.
	Conversion map[string]ConversionRow
}

// ConversionRow is one row of Table IV.
type ConversionRow struct {
	App     string
	Speedup float64
	Metric  verify.Metric
	// QualityLoss is NaN when the conversion destroys the output.
	QualityLoss float64
}

// Options parameterises a regeneration.
type Options struct {
	// Context, when non-nil, cancels the study: the stage in flight stops
	// at its next evaluation boundary and Run returns the study built so
	// far (complete stages stay intact, the interrupted stage is dropped).
	Context context.Context //mixplint:ignore ctxfirst -- Options is a configuration struct; the context arrives through it like http.Server.BaseContext rather than through a call chain
	// Workers is the scheduler pool size (simulated cluster nodes).
	Workers int
	// KernelsOnly skips the application study (Tables IV and V and the
	// figures), for quick runs.
	KernelsOnly bool
	// Progress, when non-nil, receives one line per completed stage.
	Progress func(string)
	// NoCache disables the study-wide shared run cache. The study is
	// byte-identical either way (results are pure functions of their cache
	// key and simulated time is charged on hits); this is the escape hatch
	// and the baseline for benchmarking the cache.
	NoCache bool
	// Interpreted disables compiled evaluation study-wide: every uncached
	// execution interprets against a fresh tape instead of running its
	// precision-specialized kernel (internal/compile). Byte-identical
	// either way; this is the escape hatch and the interpreted side of the
	// compiled-vs-interpreted benchmark pair.
	Interpreted bool
	// Precisions, when non-empty, runs the study over this precision
	// ladder (e.g. "f64,f32,bf16") instead of the paper's two-level
	// double/single axis. The default ladder changes nothing; deeper
	// ladders are the ladder-depth cost benchmarks' study, not the
	// paper's.
	Precisions string
}

// Run regenerates the full study.
func Run(opts Options) *Study {
	s := &Study{
		Kernel:     map[string]map[string]harness.Report{},
		App:        map[float64]map[string]map[string]harness.Report{},
		Conversion: map[string]ConversionRow{},
	}
	progress := opts.Progress
	if progress == nil {
		progress = func(string) {}
	}
	// One cache spans the whole study: the six kernel algorithms (and the
	// five application algorithms per threshold) search the same spaces,
	// so most configurations any one job proposes have already run.
	var cache *bench.Cache
	if !opts.NoCache {
		cache = bench.NewCache(nil)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	sched := harness.Scheduler{Workers: opts.Workers, Cache: cache, Interpreted: opts.Interpreted}

	// Table III: kernels x 6 algorithms at the kernel threshold.
	var ladder mp.Ladder
	if opts.Precisions != "" {
		l, err := mp.ParseLadder(opts.Precisions)
		if err != nil {
			panic("report: precisions: " + err.Error())
		}
		if !l.IsDefault() {
			ladder = l
		}
	}
	var kernelJobs []harness.Job
	for _, k := range suite.Kernels() {
		for _, algo := range KernelAlgorithms {
			j := makeJob(k, algo, KernelThreshold)
			j.Spec.Analysis.Precisions = ladder
			kernelJobs = append(kernelJobs, j)
		}
	}
	for i, jr := range sched.RunContext(ctx, kernelJobs) {
		if ctx.Err() != nil {
			progress("study canceled during kernel study")
			return s
		}
		if jr.Err != nil {
			panic("report: kernel study: " + jr.Err.Error())
		}
		job := kernelJobs[i]
		name := job.Benchmark.Name()
		if s.Kernel[name] == nil {
			s.Kernel[name] = map[string]harness.Report{}
		}
		s.Kernel[name][jr.Report.Algorithm] = jr.Report
	}
	progress("kernel study complete (Table III)")
	if opts.KernelsOnly {
		return s
	}

	// Table IV: manual whole-program conversion per application. The
	// runner joins the study cache: a reference or manual-single run the
	// application study also needs executes once.
	runner := bench.NewRunner(Seed)
	runner.Cache = cache
	runner.Compiled = !opts.Interpreted
	for _, a := range suite.Apps() {
		if ctx.Err() != nil {
			progress("study canceled during conversion study")
			return s
		}
		ref := runner.Reference(a)
		single := runner.RunManualSingle(a)
		loss, err := verify.Compute(a.Metric(), ref.Output.Values, single.Output.Values)
		if err != nil {
			panic("report: conversion study: " + err.Error())
		}
		s.Conversion[a.Name()] = ConversionRow{
			App:         a.Name(),
			Speedup:     ref.Measured.Mean / single.Measured.Mean,
			Metric:      a.Metric(),
			QualityLoss: loss,
		}
	}
	progress("manual conversion complete (Table IV)")

	// Table V: applications x 5 algorithms x 3 thresholds.
	for _, th := range AppThresholds {
		var jobs []harness.Job
		for _, a := range suite.Apps() {
			for _, algo := range AppAlgorithms {
				jobs = append(jobs, makeJob(a, algo, th))
			}
		}
		s.App[th] = map[string]map[string]harness.Report{}
		for i, jr := range sched.RunContext(ctx, jobs) {
			if ctx.Err() != nil {
				progress("study canceled during application study")
				delete(s.App, th)
				return s
			}
			if jr.Err != nil {
				panic("report: app study: " + jr.Err.Error())
			}
			name := jobs[i].Benchmark.Name()
			if s.App[th][name] == nil {
				s.App[th][name] = map[string]harness.Report{}
			}
			s.App[th][name][jr.Report.Algorithm] = jr.Report
		}
		progress("application study complete at threshold " + formatThreshold(th) + " (Table V)")
	}
	return s
}

// makeJob builds the harness job for one (benchmark, algorithm,
// threshold) cell with the canonical spec fields.
func makeJob(b bench.Benchmark, algo string, threshold float64) harness.Job {
	return harness.Job{
		Spec: harness.Spec{
			Name:     b.Name(),
			BuildDir: b.Name(),
			Build:    []string{"make"},
			Clean:    []string{"make clean"},
			Bin:      b.Name(),
			Metric:   b.Metric(),
			Analysis: harness.AnalysisSpec{
				ID:        "floatsmith",
				Name:      "floatSmith",
				Algorithm: algo,
				Threshold: threshold,
			},
		},
		Benchmark: b,
		Seed:      Seed,
	}
}

// CellFilled reports whether a Table V cell has content. The paper leaves
// a cell empty when the algorithm "did not produce any results in 24
// hours"; an analysis that exhausted its budget is rendered empty here
// even when it had found passing configurations along the way, matching
// that convention.
func CellFilled(r harness.Report) bool {
	return !r.TimedOut && !math.IsNaN(r.Speedup)
}
