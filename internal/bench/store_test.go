package bench

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/mp"
	"repro/internal/perfmodel"
	"repro/internal/store"
)

func TestResultCodecRoundTrip(t *testing.T) {
	cases := map[string]Result{
		"zero": {},
		"nil-vs-empty": {
			Output:  Output{Values: []float64{}},
			Profile: []mp.VarProfile{},
		},
		"full": {
			Output: Output{Values: []float64{1.5, -0.25, 3.75e-300}},
			Cost: mp.Cost{
				Flops64: 1, Flops32: 2, Flops16: 3, Casts: 4,
				Bytes64: 5, Bytes32: 6, Bytes16: 7,
				Footprint64: 8, Footprint32: 9, Footprint16: 10,
			},
			Profile: []mp.VarProfile{
				{Bytes: 11, Flops: 12, Casts: 13},
				{Bytes: 0, Flops: 1 << 60, Casts: 0},
			},
			ModelTime: 0.0625,
			Measured:  perfmodel.Measurement{Mean: 0.03125, Runs: 10, Total: 0.625},
		},
		"non-finite": {
			Output:    Output{Values: []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}},
			ModelTime: math.Inf(1),
		},
	}
	for name, r := range cases {
		t.Run(name, func(t *testing.T) {
			enc := EncodeResult(nil, r)
			got, err := DecodeResult(enc)
			if err != nil {
				t.Fatalf("DecodeResult: %v", err)
			}
			// reflect.DeepEqual treats NaN != NaN; compare via bits.
			if !resultsBitEqual(got, r) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
			}
			// nil-ness must survive, not just emptiness.
			if (got.Output.Values == nil) != (r.Output.Values == nil) ||
				(got.Profile == nil) != (r.Profile == nil) {
				t.Fatalf("nil-ness lost: got values=%v profile=%v", got.Output.Values, got.Profile)
			}
		})
	}
}

func TestResultCodecRejectsBadPayloads(t *testing.T) {
	good := EncodeResult(nil, Result{Output: Output{Values: []float64{1, 2}}})
	// Every strict truncation must fail, never decode to a wrong value.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeResult(good[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	if _, err := DecodeResult(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}
	bad := append([]byte{}, good...)
	bad[0] = 99 // future codec version
	if _, err := DecodeResult(bad); err == nil {
		t.Fatal("future codec version decoded successfully")
	}
}

// resultsBitEqual compares two Results treating float64s by bit pattern.
func resultsBitEqual(a, b Result) bool {
	if len(a.Output.Values) != len(b.Output.Values) {
		return false
	}
	for i := range a.Output.Values {
		if math.Float64bits(a.Output.Values[i]) != math.Float64bits(b.Output.Values[i]) {
			return false
		}
	}
	if a.Cost != b.Cost || !reflect.DeepEqual(a.Profile, b.Profile) {
		return false
	}
	return math.Float64bits(a.ModelTime) == math.Float64bits(b.ModelTime) &&
		math.Float64bits(a.Measured.Mean) == math.Float64bits(b.Measured.Mean) &&
		a.Measured.Runs == b.Measured.Runs &&
		math.Float64bits(a.Measured.Total) == math.Float64bits(b.Measured.Total)
}

func TestStoreFingerprintSeparatesInputs(t *testing.T) {
	a, b := StoreFingerprint(1), StoreFingerprint(2)
	if a == b {
		t.Fatal("different models produced the same store fingerprint")
	}
	if StoreFingerprint(1) != a {
		t.Fatal("StoreFingerprint not deterministic")
	}
	if StoreFingerprint(1) == uint64(1) {
		t.Fatal("store fingerprint must differ from the raw model fingerprint")
	}
}

// TestStoredCacheWarmAcrossGenerations is the bench-level version of the
// tentpole's restart guarantee: a second cache over a reopened store
// serves the first generation's executions without re-running anything,
// and the served results are bit-identical.
func TestStoredCacheWarmAcrossGenerations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	fp := StoreFingerprint(NewRunner(42).ModelFingerprint())
	run := func(st *store.Store) (Result, Result, *Runner) {
		r := NewRunner(42)
		r.Cache = NewStoredCache(nil, st)
		b := newStub(0)
		base := r.Run(b, nil)
		single := r.Run(b, AllSingle(2))
		return base, single, r
	}

	st, err := store.Open(dir, store.Options{Fingerprint: fp})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base1, single1, _ := run(st)
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := store.Open(dir, store.Options{Fingerprint: fp})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	base2, single2, r2 := run(st2)
	if !resultsBitEqual(base1, base2) || !resultsBitEqual(single1, single2) {
		t.Fatal("second generation served different results from the store")
	}
	cs := r2.Cache.Stats()
	if cs.TierHits != 2 || cs.Misses != 0 {
		t.Fatalf("second generation executed instead of hitting the store: %+v", cs)
	}
	ss := st2.Stats()
	if ss.GetHits != 2 {
		t.Fatalf("store stats after warm run: %+v", ss)
	}
}
