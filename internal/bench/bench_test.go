package bench

import (
	"testing"

	"repro/internal/mp"
	"repro/internal/telemetry"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// stub is a minimal benchmark: two variables, one cluster; output depends
// on the configuration so tests can see precision take effect.
type stub struct {
	g      *typedep.Graph
	hidden int
}

func newStub(hidden int) *stub {
	g := typedep.NewGraph()
	a := g.Add("a", "f", typedep.ArrayVar)
	b := g.Add("b", "f", typedep.Param)
	g.Connect(a, b)
	return &stub{g: g, hidden: hidden}
}

func (s *stub) Name() string          { return "stub" }
func (s *stub) Kind() Kind            { return Kernel }
func (s *stub) Description() string   { return "test stub" }
func (s *stub) Metric() verify.Metric { return verify.MAE }
func (s *stub) Graph() *typedep.Graph { return s.g }
func (s *stub) HiddenVars() int       { return s.hidden }

func (s *stub) Run(t *mp.Tape, seed int64) Output {
	a := t.NewArray(mp.VarID(0), 4)
	x := 1.0 + 1e-12 // not float32-representable
	for i := 0; i < 4; i++ {
		a.Set(i, x)
	}
	t.AddFlops(t.Prec(0), 100)
	// A hidden literal site, when present and demoted, perturbs the last
	// element so tests can observe RunManualSingle reaching it.
	if s.hidden > 0 {
		lit := mp.VarID(s.g.NumVars())
		a.Set(3, t.Value(lit, x))
	}
	return Output{Values: a.Snapshot()}
}

func TestKindString(t *testing.T) {
	if Kernel.String() != "kernel" || App.String() != "application" {
		t.Error("kind names wrong")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := NewConfig(3)
	if c.Singles() != 0 {
		t.Errorf("fresh config singles = %d", c.Singles())
	}
	c[1] = mp.F32
	if c.Singles() != 1 {
		t.Errorf("singles = %d", c.Singles())
	}
	clone := c.Clone()
	clone[0] = mp.F32
	if c.Singles() != 1 {
		t.Error("Clone aliases the original")
	}
	if c.Key() == clone.Key() {
		t.Error("distinct configs share a key")
	}
	full := AllSingle(3)
	if full.Singles() != 3 {
		t.Errorf("AllSingle singles = %d", full.Singles())
	}
	if NewConfig(0).Key() != "" {
		t.Error("empty config key should be empty")
	}
}

func TestRunnerReferenceIsDouble(t *testing.T) {
	s := newStub(0)
	r := NewRunner(1)
	res := r.Reference(s)
	x := 1.0 + 1e-12
	for i, v := range res.Output.Values {
		if v != x {
			t.Errorf("value[%d] = %g, want unrounded", i, v)
		}
	}
	if res.Cost.Flops64 != 100 || res.Cost.Flops32 != 0 {
		t.Errorf("reference cost = %+v", res.Cost)
	}
	if res.ModelTime <= 0 || res.Measured.Mean <= 0 {
		t.Error("non-positive model time")
	}
}

func TestRunnerAppliesConfig(t *testing.T) {
	s := newStub(0)
	r := NewRunner(1)
	res := r.Run(s, AllSingle(2))
	want := float64(float32(1.0 + 1e-12))
	for i, v := range res.Output.Values {
		if v != want {
			t.Errorf("value[%d] = %g, want narrowed", i, v)
		}
	}
	if res.Cost.Flops32 != 100 {
		t.Errorf("single cost = %+v", res.Cost)
	}
}

func TestRunnerPanicsOnWrongConfigLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong config length")
		}
	}()
	NewRunner(1).Run(newStub(0), NewConfig(5))
}

func TestHiddenVarsStayDoubleUnderSearchConfigs(t *testing.T) {
	s := newStub(1)
	r := NewRunner(1)
	// A search config demotes the two visible variables; the hidden
	// literal must stay double, leaving element 3 unrounded... but it was
	// stored through the (demoted) array, so what matters is that Run does
	// not panic and the tape is sized for the hidden slot.
	res := r.Run(s, AllSingle(2))
	if len(res.Output.Values) != 4 {
		t.Fatal("bad output")
	}
	// RunManualSingle demotes the hidden slot too and must also work.
	manual := r.RunManualSingle(s)
	if len(manual.Output.Values) != 4 {
		t.Fatal("bad manual output")
	}
}

func TestMeasurementDeterministicPerConfig(t *testing.T) {
	s := newStub(0)
	r := NewRunner(9)
	a := r.Run(s, AllSingle(2))
	b := r.Run(s, AllSingle(2))
	if a.Measured != b.Measured {
		t.Error("same config measured differently")
	}
	c := r.Reference(s)
	if a.Measured == c.Measured {
		t.Error("distinct configs share jitter stream and time")
	}
}

func TestRunIRKeepsStorageWide(t *testing.T) {
	s := newStub(0)
	r := NewRunner(1)
	src := r.Run(s, AllSingle(2))
	ir := r.RunIR(s, AllSingle(2))
	// Same numeric effect: both round stores through float32.
	for i := range src.Output.Values {
		if src.Output.Values[i] != ir.Output.Values[i] {
			t.Errorf("value[%d] differs between source and IR demotion", i)
		}
	}
	// Different machine effect: IR demotion keeps traffic and footprint at
	// the double width.
	if ir.Cost.Bytes32 != 0 || ir.Cost.Footprint32 != 0 {
		t.Errorf("IR demotion produced narrow storage: %+v", ir.Cost)
	}
	if ir.Cost.Bytes64 != src.Cost.Bytes32*2 {
		t.Errorf("IR traffic %d, want double-width %d", ir.Cost.Bytes64, src.Cost.Bytes32*2)
	}
	// Compute still narrows.
	if ir.Cost.Flops32 != src.Cost.Flops32 {
		t.Errorf("IR flops32 = %d, want %d", ir.Cost.Flops32, src.Cost.Flops32)
	}
}

// TestRunnerTelemetry checks the per-run accounting: one runs_total series
// per (bench, kind), model-time observations in the histogram, and flop /
// cast / traffic counters matching the cost model.
func TestRunnerTelemetry(t *testing.T) {
	s := newStub(0)
	r := NewRunner(1)
	tel := telemetry.New(nil)
	r.Telemetry = tel

	ref := r.Reference(s)
	cfg := NewConfig(s.Graph().NumVars())
	cfg[0] = mp.F32
	cand := r.Run(s, cfg)

	snap := tel.Snapshot()
	counters := map[string]float64{}
	for _, p := range snap.Counters {
		counters[p.Name+p.Labels] = p.Value
	}
	if got := counters[`mixpbench_bench_runs_total{bench="stub",kind="reference"}`]; got != 1 {
		t.Errorf("reference runs = %g, want 1", got)
	}
	if got := counters[`mixpbench_bench_runs_total{bench="stub",kind="candidate"}`]; got != 1 {
		t.Errorf("candidate runs = %g, want 1", got)
	}
	wantF64 := float64(ref.Cost.Flops64 + cand.Cost.Flops64)
	if got := counters[`mixpbench_bench_flops64_total{bench="stub"}`]; got != wantF64 {
		t.Errorf("flops64 counter = %g, cost model says %g", got, wantF64)
	}
	wantF32 := float64(ref.Cost.Flops32 + cand.Cost.Flops32)
	if got := counters[`mixpbench_bench_flops32_total{bench="stub"}`]; got != wantF32 {
		t.Errorf("flops32 counter = %g, cost model says %g", got, wantF32)
	}
	wantBytes := float64(ref.Cost.Bytes() + cand.Cost.Bytes())
	if got := counters[`mixpbench_bench_traffic_bytes_total{bench="stub"}`]; got != wantBytes {
		t.Errorf("traffic counter = %g, cost model says %g", got, wantBytes)
	}
	for _, h := range snap.Histograms {
		if h.Name == "mixpbench_bench_model_seconds" && h.Count != 2 {
			t.Errorf("model_seconds count = %d, want 2", h.Count)
		}
	}
}
