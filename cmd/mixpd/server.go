package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; mounted only with -pprof
	"strconv"

	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/trace"
)

// maxCampaignBytes bounds a submitted configuration body; the paper's
// configs are a few KB, so 1 MiB is generous without inviting abuse.
const maxCampaignBytes = 1 << 20

// serverOptions configures the HTTP surface beyond its engine.
type serverOptions struct {
	// accessLog, when non-nil, receives one JSON line per request.
	accessLog io.Writer
	// pprof mounts net/http/pprof under /debug/pprof/.
	pprof bool
	// store is the optional durable result store behind the shared run
	// cache; /healthz and /cachediag report its health and traffic.
	store *store.Store
	// interpreted is the -compiled=false escape hatch: every campaign
	// evaluates on the interpreter instead of precision-specialized
	// kernels. Per-submission ?compiled= overrides it.
	interpreted bool
}

// newServer builds the HTTP API over one engine:
//
//	GET  /healthz                  durability-aware health: store and
//	                               campaign-history write health plus
//	                               drain state; 503 while degraded or
//	                               draining
//	GET  /metrics                  server-wide request metrics (text exposition)
//	GET  /campaigns                all statuses, submission order
//	POST /campaigns                submit a YAML campaign (the body);
//	                               ?name= ?seed= ?workers= optional;
//	                               ?compiled=false interprets this one
//	                               campaign (?compiled=true forces the
//	                               kernels back on under -compiled=false)
//	GET  /campaigns/{id}           one status
//	POST /campaigns/{id}/cancel    cancel (idempotent); returns status
//	GET  /campaigns/{id}/results   finished jobs so far, job order
//	GET  /campaigns/{id}/events    telemetry event stream over SSE
//	GET  /campaigns/{id}/metrics   campaign metrics (text exposition)
//	GET  /campaigns/{id}/trace     Chrome trace_event JSON of the finished
//	                               campaign (?format=jsonl for the span log);
//	                               409 while it is still running
//	GET  /campaigns/{id}/profile   per-phase / critical-path profile
//	                               (?top=N caps the job table); 409 while
//	                               running
//	GET  /campaigns/{id}/cachediag live per-job run-cache attribution
//	                               (scheduling-dependent diagnostics)
//	                               plus result-store health when the
//	                               server runs with -store
//
// Every route is wrapped with per-route request metrics and, when
// enabled, structured access logging. Submission backpressure: a full
// queue answers 429 with Retry-After, a draining server answers 503;
// campaign artifacts requested early answer 409.
func newServer(e *engine.Engine, opts serverOptions) http.Handler {
	o := newObs(opts.accessLog)
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, o.route(pattern, h))
	}
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		serveHealth(e, opts.store, w)
	})
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.tel.WriteMetrics(w)
	})
	handle("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Statuses())
	})
	handle("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		submit(e, opts.interpreted, w, r)
	})
	handle("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := e.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	handle("POST /campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := e.Cancel(id); err != nil {
			writeError(w, err)
			return
		}
		st, err := e.Status(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	handle("GET /campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		recs, err := e.Results(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, recs)
	})
	handle("GET /campaigns/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Buffer the exposition so an archived campaign (whose recorder
		// is gone) answers a clean 410 instead of a half-written 200.
		var buf bytes.Buffer
		if err := e.WriteMetrics(r.PathValue("id"), &buf); err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
	handle("GET /campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		streamEvents(e, w, r)
	})
	handle("GET /campaigns/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		serveTrace(e, w, r)
	})
	handle("GET /campaigns/{id}/profile", func(w http.ResponseWriter, r *http.Request) {
		serveProfile(e, w, r)
	})
	handle("GET /campaigns/{id}/cachediag", func(w http.ResponseWriter, r *http.Request) {
		diag, err := e.CacheDiag(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		body := cacheDiagBody{Jobs: diag}
		cs := e.CompileStats()
		body.Compile = &cs
		if opts.store != nil {
			ss := opts.store.Stats()
			body.Store = &ss
		}
		writeJSON(w, http.StatusOK, body)
	})
	if opts.pprof {
		// pprof registers on DefaultServeMux; mount it explicitly so the
		// engine's mux (which never touches the default) can serve it.
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
	}
	return mux
}

// serveTrace handles GET /campaigns/{id}/trace: the deterministic span
// tree of a finished campaign as Chrome trace_event JSON (open the
// download in Perfetto or chrome://tracing), or as the flat JSONL span
// log with ?format=jsonl.
func serveTrace(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	t, err := e.Trace(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChromeTrace(w, t)
	case "jsonl":
		w.Header().Set("Content-Type", "application/jsonl")
		trace.WriteJSONL(w, t)
	default:
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "unknown trace format; want chrome or jsonl"})
	}
}

// serveProfile handles GET /campaigns/{id}/profile: the per-phase and
// critical-path aggregation of the campaign's trace. ?top=N caps the
// job table.
func serveProfile(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	topN := 0
	if s := r.URL.Query().Get("top"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad top: must be a non-negative integer"})
			return
		}
		topN = n
	}
	p, err := e.Profile(r.PathValue("id"), topN)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// submit handles POST /campaigns. interpreted is the server-wide
// -compiled=false default; ?compiled= overrides it per campaign.
func submit(e *engine.Engine, interpreted bool, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCampaignBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxCampaignBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorBody{Error: fmt.Sprintf("campaign configuration exceeds %d bytes", maxCampaignBytes)})
		return
	}
	opts := engine.SubmitOptions{Name: r.URL.Query().Get("name"), Interpreted: interpreted}
	if s := r.URL.Query().Get("compiled"); s != "" {
		compiled, err := strconv.ParseBool(s)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad compiled: must be a boolean"})
			return
		}
		opts.Interpreted = !compiled
	}
	if s := r.URL.Query().Get("seed"); s != "" {
		if opts.Seed, err = strconv.ParseInt(s, 10, 64); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad seed: " + err.Error()})
			return
		}
	}
	if s := r.URL.Query().Get("workers"); s != "" {
		if opts.Workers, err = strconv.Atoi(s); err != nil || opts.Workers < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad workers: must be a non-negative integer"})
			return
		}
	}
	// Submit validates both before accepting the campaign, so a typo'd
	// ladder or objective is a 400 here, not a failed campaign later.
	opts.Precisions = r.URL.Query().Get("precisions")
	opts.Objective = r.URL.Query().Get("objective")
	id, err := e.Submit(string(body), opts)
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := e.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/campaigns/"+id)
	writeJSON(w, http.StatusCreated, st)
}

// streamEvents serves a campaign's telemetry event log as Server-Sent
// Events: one "event:"/"data:" frame per telemetry event, the event's
// stream sequence number as the SSE id, and a final "done" frame when
// the campaign finishes. A reconnecting client resumes with
// Last-Event-ID (or ?after=N) and misses nothing: the log keeps the
// full history.
func streamEvents(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	log, err := e.Events(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "streaming unsupported by this connection"})
		return
	}
	after := 0
	if s := r.Header.Get("Last-Event-ID"); s != "" {
		after, _ = strconv.Atoi(s)
	} else if s := r.URL.Query().Get("after"); s != "" {
		after, _ = strconv.Atoi(s)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	n := after
	for {
		events, closed := log.Since(n)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				data = []byte(`{"error":"unencodable event"}`)
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Name, data)
		}
		n += len(events)
		flusher.Flush()
		if closed {
			fmt.Fprintf(w, "event: done\ndata: {}\n\n")
			flusher.Flush()
			return
		}
		if err := log.Wait(r.Context(), n); err != nil {
			return // client went away
		}
	}
}

// cacheDiagBody is the /cachediag response: the campaign's live
// per-job run-cache attribution, the engine-wide compile cache's
// kernel and input-stream counters, plus, when the server runs with
// -store, the durable tier's health and traffic counters. The compile
// section is engine-wide (kernels are shared across tenants by
// design) and scheduling-dependent, like the per-job attribution.
type cacheDiagBody struct {
	Jobs    []trace.JobCacheStats `json:"jobs"`
	Compile *compile.Stats        `json:"compile,omitempty"`
	Store   *store.Stats          `json:"store,omitempty"`
}

// healthBody is the /healthz response: overall status plus the two
// durability subsystems behind it - campaign history persistence
// (engine) and the result store. Status is "ok" while everything
// writes cleanly, "draining" once shutdown began, and "degraded" when
// either subsystem has recorded write or read errors; the latter two
// answer 503 so probes pull the instance out of rotation before data
// loss compounds.
type healthBody struct {
	Status string        `json:"status"`
	Engine engine.Health `json:"engine"`
	Store  *store.Stats  `json:"store,omitempty"`
}

// serveHealth handles GET /healthz.
func serveHealth(e *engine.Engine, st *store.Store, w http.ResponseWriter) {
	h := e.Health()
	body := healthBody{Status: "ok", Engine: h}
	healthy := h.Healthy()
	if st != nil {
		ss := st.Stats()
		body.Store = &ss
		healthy = healthy && ss.Healthy
	}
	status := http.StatusOK
	switch {
	case !healthy:
		body.Status = "degraded"
		status = http.StatusServiceUnavailable
	case h.Draining:
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps engine errors to HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, engine.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, engine.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, engine.ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrNotReady):
		status = http.StatusConflict
	case errors.Is(err, engine.ErrArchived):
		status = http.StatusGone
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
