// Command mptrace renders the anytime behaviour of the search strategies
// on one benchmark: for each algorithm it runs the analysis with
// per-configuration tracing and prints the best-passing-speedup-so-far
// curve against evaluations and simulated analysis time. This is the
// search-dynamics view behind the paper's Figure 3 (speedup vs. search
// effort), per strategy instead of aggregated.
//
// Usage:
//
//	mptrace -bench lavamd [-threshold 1e-3] [-algorithms DD,GA,GP] [-csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	mixpbench "repro"
	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/search"
)

func main() {
	var (
		benchName = flag.String("bench", "lavamd", "benchmark to analyse")
		threshold = flag.Float64("threshold", 1e-3, "quality threshold")
		algos     = flag.String("algorithms", "CM,DD,HR,HC,GA,GP", "comma-separated strategies")
		csvOut    = flag.Bool("csv", false, "emit raw curves as CSV instead of the summary")
		budget    = flag.Float64("budget", 0, "analysis budget in simulated seconds (0 = 24h)")
	)
	flag.Parse()

	b, err := mixpbench.Benchmark(*benchName)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mptrace: %s at threshold %.0e\n", b.Name(), *threshold)
	if *csvOut {
		fmt.Println("algorithm,seq,spent_seconds,singles,passed,speedup,best_so_far")
	}

	for _, name := range strings.Split(*algos, ",") {
		name = strings.TrimSpace(name)
		canonical, err := harness.CanonicalAlgorithm(name)
		if err != nil {
			fatal(err)
		}
		algo, err := search.ByName(canonical, report.Seed)
		if err != nil {
			fatal(err)
		}
		space := search.NewSpace(b.Graph(), algo.Mode())
		eval := search.NewEvaluator(space, bench.NewRunner(report.Seed), b, *threshold)
		if *budget > 0 {
			eval.SetBudget(*budget)
		}
		eval.SetTrace(true)
		out := algo.Search(eval)
		trace := eval.Trace()

		if *csvOut {
			printCSV(os.Stdout, canonical, trace)
			continue
		}
		printSummary(os.Stdout, canonical, out, trace)
	}
}

// printCSV emits one strategy's raw anytime curve.
func printCSV(w io.Writer, name string, trace []search.TraceEntry) {
	best := 0.0
	for _, e := range trace {
		if e.Result.Passed && e.Result.Speedup > best {
			best = e.Result.Speedup
		}
		fmt.Fprintf(w, "%s,%d,%.0f,%d,%v,%.4f,%.4f\n",
			name, e.Seq, e.SpentSeconds, e.Singles,
			e.Result.Passed, e.Result.Speedup, best)
	}
}

// printSummary renders one strategy's anytime curve at coarse milestones.
func printSummary(w io.Writer, name string, out search.Outcome, trace []search.TraceEntry) {
	fmt.Fprintf(w, "\n%s: evaluated %d configurations", name, out.Evaluated)
	switch {
	case out.TimedOut:
		fmt.Fprintf(w, " (analysis budget exhausted)")
	case out.Found:
		fmt.Fprintf(w, ", converged at %.3fx", out.BestResult.Speedup)
	default:
		fmt.Fprintf(w, ", found nothing")
	}
	fmt.Fprintln(w)
	if len(trace) == 0 {
		return
	}
	// Milestones: first pass, each improvement, final.
	best := 0.0
	fmt.Fprintf(w, "  %-6s %-10s %-9s %s\n", "eval", "sim-time", "singles", "best-so-far")
	for _, e := range trace {
		if e.Result.Passed && e.Result.Speedup > best*1.001 {
			best = e.Result.Speedup
			fmt.Fprintf(w, "  #%-5d %7.0fs   %-9d %.3fx\n", e.Seq, e.SpentSeconds, e.Singles, best)
		}
	}
	last := trace[len(trace)-1]
	fmt.Fprintf(w, "  #%-5d %7.0fs   (last evaluation)\n", last.Seq, last.SpentSeconds)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mptrace:", err)
	os.Exit(1)
}
