package mp

import (
	"fmt"
	"strconv"
	"strings"
)

// Ladder is a campaign's ordered precision menu: rung 0 is the baseline
// format every variable starts at, and each later rung is a strictly
// narrower demotion target. The paper's study is the two-rung default
// {f64, f32}; the search space over loc locations has len(Ladder)^loc
// points (the paper's p^loc with p = 2).
//
// A configuration assigns each variable a rung, and the search layer's
// digit-vector encoding (internal/search) indexes into the ladder.
// Ladders are campaign-scoped: they ride through harness and engine
// options, never through global state, so concurrent campaigns with
// different ladders share one process, one run cache, and one compiler.
type Ladder []Prec

// DefaultLadder returns the paper's two-level study ladder {f64, f32}.
// Every campaign that does not name a ladder runs on it, which is what
// keeps the default study byte-identical to the pre-ladder runtime.
func DefaultLadder() Ladder { return Ladder{F64, F32} }

// Validate checks the ladder shape: at least two rungs, rung 0 is f64
// (the reference every speedup and error is measured against), no
// repeated formats, and strictly narrowing - each rung must be strictly
// narrower than the one before it (fewer mantissa bits, or equal mantissa
// and fewer exponent bits), so "demote further" is monotone for every
// search strategy.
func (l Ladder) Validate() error {
	if len(l) < 2 {
		return fmt.Errorf("mp: ladder needs at least two rungs, has %d", len(l))
	}
	if l[0] != F64 {
		return fmt.Errorf("mp: ladder rung 0 must be f64 (the reference format), got %s", l[0].Name())
	}
	for i := 1; i < len(l); i++ {
		if !widerPrec(l[i-1], l[i]) {
			return fmt.Errorf("mp: ladder rung %d (%s) must be strictly narrower than rung %d (%s)",
				i, l[i].Name(), i-1, l[i-1].Name())
		}
	}
	return nil
}

// IsDefault reports whether the ladder is the paper's {f64, f32} study
// ladder (or nil/empty, which every consumer treats as the default).
func (l Ladder) IsDefault() bool {
	return len(l) == 0 || (len(l) == 2 && l[0] == F64 && l[1] == F32)
}

// Equal reports element-wise equality.
func (l Ladder) Equal(o Ladder) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the ladder in the precisions-clause grammar:
// comma-joined short format names, e.g. "f64,f32,f16".
func (l Ladder) String() string {
	names := make([]string, len(l))
	for i, p := range l {
		names[i] = p.Name()
	}
	return strings.Join(names, ",")
}

// ParsePrec parses one format name: f64/double, f32/single, f16/half,
// bf16/bfloat16, or custom(e,m). Names are case-insensitive.
func ParsePrec(s string) (Prec, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	switch name {
	case "f64", "double", "fp64":
		return F64, nil
	case "f32", "single", "float", "fp32":
		return F32, nil
	case "f16", "half", "fp16":
		return F16, nil
	case "bf16", "bfloat16":
		return BF16, nil
	}
	if rest, ok := strings.CutPrefix(name, "custom("); ok {
		body, ok := strings.CutSuffix(rest, ")")
		if !ok {
			return 0, fmt.Errorf("mp: malformed custom format %q (want custom(e,m))", s)
		}
		e, m, found := strings.Cut(body, ",")
		if !found {
			return 0, fmt.Errorf("mp: malformed custom format %q (want custom(e,m))", s)
		}
		eBits, err1 := strconv.Atoi(strings.TrimSpace(e))
		mBits, err2 := strconv.Atoi(strings.TrimSpace(m))
		if err1 != nil || err2 != nil {
			return 0, fmt.Errorf("mp: malformed custom format %q (want custom(e,m))", s)
		}
		return Custom(eBits, mBits)
	}
	return 0, fmt.Errorf("mp: unknown precision format %q (valid: f64, f32, f16, bf16, custom(e,m))", s)
}

// ParseLadder parses the precisions-clause grammar: a comma-separated
// list of format names, commas inside custom(e,m) excluded, validated
// with Validate. The empty string parses to the default {f64, f32}
// ladder, so an unset flag or clause means the paper's study.
func ParseLadder(s string) (Ladder, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultLadder(), nil
	}
	var l Ladder
	depth, start := 0, 0
	fields := make([]string, 0, 4)
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				fields = append(fields, s[start:i])
				start = i + 1
			}
		}
	}
	fields = append(fields, s[start:])
	for _, f := range fields {
		p, err := ParsePrec(f)
		if err != nil {
			return nil, err
		}
		l = append(l, p)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
