package kernels

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/verify"
)

// TestTableIIKernelCounts locks the Total Variables / Total Clusters
// inventory of every kernel to the paper's Table II.
func TestTableIIKernelCounts(t *testing.T) {
	want := map[string]struct{ tv, tc int }{
		"banded-lin-eq":  {2, 1},
		"diff-predictor": {5, 1},
		"eos":            {7, 2},
		"gen-lin-recur":  {4, 1},
		"hydro-1d":       {6, 2},
		"iccg":           {2, 1},
		"innerprod":      {3, 2},
		"int-predict":    {9, 2},
		"planckian":      {6, 2},
		"tridiag":        {3, 1},
	}
	ks := All()
	if len(ks) != len(want) {
		t.Fatalf("suite has %d kernels, want %d", len(ks), len(want))
	}
	for _, k := range ks {
		w, ok := want[k.Name()]
		if !ok {
			t.Errorf("unexpected kernel %q", k.Name())
			continue
		}
		g := k.Graph()
		if g.NumVars() != w.tv {
			t.Errorf("%s: TV = %d, want %d", k.Name(), g.NumVars(), w.tv)
		}
		if g.NumClusters() != w.tc {
			t.Errorf("%s: TC = %d, want %d", k.Name(), g.NumClusters(), w.tc)
		}
	}
}

// TestTableIKernelInventory locks the kernel names and descriptions of
// Table I, in table order.
func TestTableIKernelInventory(t *testing.T) {
	want := []struct{ name, desc string }{
		{"banded-lin-eq", "Banded linear systems solution"},
		{"diff-predictor", "Difference predictor"},
		{"eos", "Equation of state fragment"},
		{"gen-lin-recur", "General linear recurrence equation"},
		{"hydro-1d", "Hydrodynamics fragment"},
		{"iccg", "Incomplete Cholesky conjugate gradient"},
		{"innerprod", "Inner product"},
		{"int-predict", "Integrate predictors"},
		{"planckian", "Planckian distribution"},
		{"tridiag", "Tridiagonal linear systems solution"},
	}
	ks := All()
	if len(ks) != len(want) {
		t.Fatalf("suite has %d kernels, want %d", len(ks), len(want))
	}
	for i, k := range ks {
		if k.Name() != want[i].name {
			t.Errorf("kernel %d = %q, want %q", i, k.Name(), want[i].name)
		}
		if k.Description() != want[i].desc {
			t.Errorf("%s description = %q, want %q", k.Name(), k.Description(), want[i].desc)
		}
		if k.Kind() != bench.Kernel {
			t.Errorf("%s kind = %v, want kernel", k.Name(), k.Kind())
		}
		if k.Metric() != verify.MAE {
			t.Errorf("%s metric = %v, want MAE", k.Name(), k.Metric())
		}
	}
}

// TestDiffPredictorExercisesCr is a regression test for a discrepancy
// typedepcheck (mixplint) uncovered: the port declared the cascade
// temporary cr in its graph but Run never routed a value through it, so
// cr's configured precision could not influence the computation. The
// cascade now spills each difference through cr as the C fragment does;
// demoting cr alone must perturb the output.
func TestDiffPredictorExercisesCr(t *testing.T) {
	var k bench.Benchmark
	for _, b := range All() {
		if b.Name() == "diff-predictor" {
			k = b
		}
	}
	if k == nil {
		t.Fatal("diff-predictor not in suite")
	}
	id, ok := k.Graph().Lookup("cr", "predict")
	if !ok {
		t.Fatal("cr not declared")
	}
	ref := k.Run(mp.NewTape(k.Graph().NumVars()), 1)
	demoted := mp.NewTape(k.Graph().NumVars())
	demoted.SetPrec(mp.VarID(id), mp.F16)
	got := k.Run(demoted, 1)
	same := len(ref.Values) == len(got.Values)
	if same {
		for i := range ref.Values {
			if ref.Values[i] != got.Values[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("demoting cr left the output bit-identical: cr is not on the dataflow path")
	}
}

// TestKernelsHaveNonTrivialOutput guards against a kernel silently losing
// its computation: every kernel's reference output must contain finite,
// non-constant values.
func TestKernelsHaveNonTrivialOutput(t *testing.T) {
	runner := bench.NewRunner(3)
	for _, k := range All() {
		out := runner.Reference(k).Output.Values
		if len(out) == 0 {
			t.Errorf("%s: empty output", k.Name())
			continue
		}
		if len(out) > 1 {
			allSame := true
			for _, v := range out {
				if v != out[0] {
					allSame = false
					break
				}
			}
			if allSame {
				t.Errorf("%s: constant output", k.Name())
			}
		}
		ref := runner.Reference(k)
		if ref.Cost.Flops() == 0 {
			t.Errorf("%s: no flops charged", k.Name())
		}
		if ref.Cost.Bytes() == 0 {
			t.Errorf("%s: no traffic charged", k.Name())
		}
	}
}
