// Package faults is a deterministic fault model for the simulated
// cluster: a seeded injector that decides, per (job, attempt), whether a
// node suffers a transient evaluation failure, crashes outright, or runs
// as a straggler. The paper's results tables contain empty grey cells
// precisely because real analyses die to timeouts and node failures; this
// package supplies reproducible failures so the harness's recovery
// machinery (retry with backoff, checkpoint/resume) can be exercised and
// tested deterministically.
//
// Every decision is a pure function of (plan seed, job key, attempt
// number): no wall clock, no shared RNG state, no dependence on execution
// order. Two campaigns with the same plan therefore inject byte-identical
// faults under any worker-pool size, which is what keeps the harness's
// metric snapshots worker-count-invariant even with failures present.
package faults

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// None means the attempt proceeds undisturbed.
	None Kind = iota
	// Transient is a transient evaluation failure: the analysis dies
	// mid-evaluation (a flaky run, an OOM kill) and the attempt's work is
	// lost, but retrying may succeed.
	Transient
	// Crash is a node (worker) crash: mechanically like Transient - the
	// attempt's work is lost - but counted separately, as a crashed node
	// is an infrastructure event where a flaky evaluation is a workload
	// one.
	Crash
	// Straggler is a slow node: the attempt completes correctly but its
	// simulated duration is multiplied by the plan's slowdown factor.
	Straggler
)

// String returns the kind's event/metric label.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Crash:
		return "crash"
	case Straggler:
		return "straggler"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Defaults for plan fields left zero.
const (
	// DefaultSlowdown is the straggler duration multiplier.
	DefaultSlowdown = 4.0
	// DefaultWindow bounds where transient/crash faults strike: the fault
	// fires at a paid evaluation drawn uniformly from [1, window]. An
	// analysis that finishes earlier dodges the fault (the node died
	// after the job's work was already safe).
	DefaultWindow = 16
)

// Plan configures the fault model for one campaign. The zero value
// injects nothing.
type Plan struct {
	// Seed drives all fault randomness, independently of the workload
	// seed.
	Seed int64
	// Transient, Crash, and Straggler are per-attempt probabilities of
	// each fault kind; their sum must not exceed 1.
	Transient float64
	Crash     float64
	Straggler float64
	// Slowdown is the straggler duration multiplier (0 = DefaultSlowdown).
	Slowdown float64
	// Window bounds the paid-evaluation index at which transient/crash
	// faults strike (0 = DefaultWindow).
	Window int
}

// Enabled reports whether the plan can inject anything.
func (p Plan) Enabled() bool {
	return p.Transient > 0 || p.Crash > 0 || p.Straggler > 0
}

// Validate rejects rates outside [0, 1], rate sums above 1, and nonsense
// slowdown/window values.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{{"transient", p.Transient}, {"crash", p.Crash}, {"straggler", p.Straggler}} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("faults: %s rate %g outside [0, 1]", r.name, r.rate)
		}
	}
	if sum := p.Transient + p.Crash + p.Straggler; sum > 1 {
		return fmt.Errorf("faults: rates sum to %g > 1", sum)
	}
	if p.Slowdown < 0 || (p.Slowdown > 0 && p.Slowdown < 1) {
		return fmt.Errorf("faults: slowdown %g must be >= 1", p.Slowdown)
	}
	if p.Window < 0 {
		return fmt.Errorf("faults: window %d must be >= 0", p.Window)
	}
	return nil
}

// withDefaults fills zero fields.
func (p Plan) withDefaults() Plan {
	if p.Slowdown == 0 {
		p.Slowdown = DefaultSlowdown
	}
	if p.Window == 0 {
		p.Window = DefaultWindow
	}
	return p
}

// Fault is one injection decision for one attempt.
type Fault struct {
	// Kind is the fault kind (None when the attempt is undisturbed).
	Kind Kind
	// FailAfter is, for Transient/Crash, the 1-based paid evaluation at
	// which the attempt dies.
	FailAfter int
	// Slowdown is, for Straggler, the duration multiplier.
	Slowdown float64
}

// Injector draws faults from a plan. A nil *Injector is valid and never
// injects, so fault handling can be threaded unconditionally.
type Injector struct {
	plan Plan
}

// NewInjector validates the plan and returns an injector over it. A plan
// that injects nothing yields a nil injector.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if !plan.Enabled() {
		return nil, nil
	}
	return &Injector{plan: plan.withDefaults()}, nil
}

// Plan returns the injector's (defaults-filled) plan; the zero Plan for a
// nil injector.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Draw decides the fault for one attempt of one job. key must identify
// the job stably across runs (the harness uses the config entry name plus
// analysis parameters); attempt is 1-based. The decision is a pure
// function of (plan seed, key, attempt), so it is identical for any
// worker count, any submission order, and across a checkpoint/resume
// boundary.
func (in *Injector) Draw(key string, attempt int) Fault {
	if in == nil {
		return Fault{}
	}
	u := in.uniform(key, attempt, "kind")
	p := in.plan
	switch {
	case u < p.Transient:
		return Fault{Kind: Transient, FailAfter: in.failAfter(key, attempt)}
	case u < p.Transient+p.Crash:
		return Fault{Kind: Crash, FailAfter: in.failAfter(key, attempt)}
	case u < p.Transient+p.Crash+p.Straggler:
		return Fault{Kind: Straggler, Slowdown: p.Slowdown}
	}
	return Fault{}
}

// failAfter draws the evaluation index a transient/crash fault strikes at.
func (in *Injector) failAfter(key string, attempt int) int {
	return 1 + int(in.uniform(key, attempt, "failat")*float64(in.plan.Window))
}

// uniform hashes (seed, key, attempt, tag) to a uniform float64 in [0, 1).
func (in *Injector) uniform(key string, attempt int, tag string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%s", in.plan.Seed, key, attempt, tag)
	// Top 53 bits give a uniform dyadic rational in [0, 1).
	return float64(h.Sum64()>>11) / (1 << 53)
}

// ParseSpec parses the CLI fault specification: comma-separated key=value
// pairs, e.g. "transient=0.2,crash=0.05,straggler=0.1,slowdown=4,seed=7".
// Keys: transient, crash, straggler (rates in [0,1]), slowdown (>= 1),
// window (positive int), seed (int64). The result is validated.
func ParseSpec(spec string) (Plan, error) {
	var p Plan
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: bad field %q, want key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed", "window":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad %s %q: %w", key, val, err)
			}
			if key == "seed" {
				p.Seed = n
			} else {
				p.Window = int(n)
			}
		case "transient", "crash", "straggler", "slowdown":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad %s %q: %w", key, val, err)
			}
			switch key {
			case "transient":
				p.Transient = f
			case "crash":
				p.Crash = f
			case "straggler":
				p.Straggler = f
			case "slowdown":
				p.Slowdown = f
			}
		default:
			return Plan{}, fmt.Errorf("faults: unknown field %q (want transient, crash, straggler, slowdown, window, or seed)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
