package search

import "sort"

// GreedyProfile is an extension strategy beyond the paper's six,
// demonstrating the framework's pluggability (the suite's stated design
// goal: "extensible interfaces for integrating new approximation
// techniques"). It is profile-guided in the spirit of ADAPT: the
// instrumented baseline run attributes traffic and arithmetic to each
// variable, clusters are ranked by the work demotion would touch, and the
// strategy greedily accepts each cluster - most profitable first - that
// still passes verification on top of what was already accepted.
//
// Complexity is one evaluation per cluster, so its analysis time is as
// predictable as the genetic algorithm's while its acceptance order is
// informed rather than random.
type GreedyProfile struct{}

// Name returns "GP".
func (GreedyProfile) Name() string { return "GP" }

// Mode returns ByCluster.
func (GreedyProfile) Mode() Mode { return ByCluster }

// Search ranks clusters by profiled work and accepts greedily.
func (g GreedyProfile) Search(e *Evaluator) Outcome {
	space := e.Space()
	n := space.NumUnits()
	profile := e.Reference().Profile

	// Rank clusters by the work their variables carry: bytes dominate
	// (traffic halves under demotion), assignment flops follow.
	weight := make([]uint64, n)
	for u := 0; u < n; u++ {
		for _, v := range space.Unit(u).Vars {
			if int(v) < len(profile) {
				weight[u] += profile[v].Bytes + profile[v].Flops
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weight[order[a]] > weight[order[b]]
	})

	accepted := NewSet(n)
	var (
		acceptedRes Result
		found       bool
		stopErr     error
	)
	// One greedy pass per ladder rung, shallowest first: stage r raises
	// each cluster accepted at rung r-1 (most profitable first) and keeps
	// it when the trial still passes. The default ladder runs exactly one
	// pass - the historical search.
	rungs := space.NumRungs()
	for r := uint8(1); int(r) < rungs && stopErr == nil; r++ {
		for _, u := range order {
			if accepted.Rung(u) != int(r)-1 {
				continue
			}
			trial := accepted.Clone()
			trial.SetRung(u, r)
			res, err := e.Evaluate(trial)
			if err != nil {
				stopErr = err
				break
			}
			if res.Passed {
				accepted, acceptedRes, found = trial, res, true
			}
		}
	}
	if !found {
		return finish(g.Name(), e, Set{}, Result{}, false, stopErr)
	}
	return finish(g.Name(), e, accepted, acceptedRes, true, stopErr)
}
