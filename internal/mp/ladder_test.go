package mp

import "testing"

func TestParsePrec(t *testing.T) {
	cases := []struct {
		in   string
		want Prec
	}{
		{"f64", F64}, {"double", F64}, {"fp64", F64}, {"F64", F64},
		{"f32", F32}, {"single", F32}, {"float", F32},
		{"f16", F16}, {"half", F16}, {"FP16", F16},
		{"bf16", BF16}, {"bfloat16", BF16}, {"BF16", BF16},
		{" f32 ", F32},
		{"custom(5,10)", MustCustom(5, 10)},
		{"custom(8, 7)", MustCustom(8, 7)},
		{"CUSTOM(6,9)", MustCustom(6, 9)},
	}
	for _, c := range cases {
		got, err := ParsePrec(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePrec(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "f128", "custom(5)", "custom(5,10", "custom(x,y)", "custom(1,10)", "custom(5,99)"} {
		if _, err := ParsePrec(bad); err == nil {
			t.Errorf("ParsePrec(%q) succeeded", bad)
		}
	}
}

func TestParseLadder(t *testing.T) {
	l, err := ParseLadder("")
	if err != nil || !l.Equal(DefaultLadder()) || !l.IsDefault() {
		t.Errorf("ParseLadder(\"\") = %v, %v", l, err)
	}
	l, err = ParseLadder("f64,f32,f16")
	if err != nil || !l.Equal(Ladder{F64, F32, F16}) {
		t.Errorf("ParseLadder(f64,f32,f16) = %v, %v", l, err)
	}
	if l.IsDefault() {
		t.Error("three-rung ladder reported as default")
	}
	// Commas inside custom(e,m) must not split fields.
	l, err = ParseLadder("f64,custom(8,23),bf16")
	if err != nil || !l.Equal(Ladder{F64, MustCustom(8, 23), BF16}) {
		t.Errorf("ParseLadder with custom = %v, %v", l, err)
	}
	if l.String() != "f64,custom(8,23),bf16" {
		t.Errorf("String() = %q", l.String())
	}
	// Round trip: String parses back to an equal ladder.
	back, err := ParseLadder(l.String())
	if err != nil || !back.Equal(l) {
		t.Errorf("round trip = %v, %v", back, err)
	}

	for _, bad := range []string{
		"f64",          // one rung
		"f32,f16",      // rung 0 not f64
		"f64,f32,f32",  // repeated format
		"f64,f16,f32",  // widening step
		"f64,bf16,f16", // bf16 is narrower than f16 in mantissa
		"f64,junk",
	} {
		if _, err := ParseLadder(bad); err == nil {
			t.Errorf("ParseLadder(%q) succeeded", bad)
		}
	}
}

func TestLadderValidate(t *testing.T) {
	if err := DefaultLadder().Validate(); err != nil {
		t.Errorf("default ladder invalid: %v", err)
	}
	if err := (Ladder{F64, F32, F16, MustCustom(4, 3)}).Validate(); err != nil {
		t.Errorf("four-rung ladder invalid: %v", err)
	}
	if err := (Ladder{F64}).Validate(); err == nil {
		t.Error("single-rung ladder validated")
	}
	if err := (Ladder{F32, F16}).Validate(); err == nil {
		t.Error("ladder without f64 base validated")
	}
	if err := (Ladder{F64, F16, F32}).Validate(); err == nil {
		t.Error("widening ladder validated")
	}
}

func TestLadderIsDefault(t *testing.T) {
	if !Ladder(nil).IsDefault() || !DefaultLadder().IsDefault() {
		t.Error("nil/default ladder not recognized as default")
	}
	if (Ladder{F64, F16}).IsDefault() {
		t.Error("{f64,f16} reported as default")
	}
}
