package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// Event is one structured record in the telemetry stream.
type Event struct {
	// Seq is the stream-assigned monotonic sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Name classifies the event (e.g. "evaluation", "job_start").
	Name string `json:"event"`
	// Fields carries the event payload. encoding/json marshals map keys
	// in sorted order, so serialised events are deterministic.
	Fields map[string]any `json:"fields,omitempty"`
}

// Sink consumes a stream of events. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	// Emit records one event.
	Emit(Event)
	// Close flushes the sink and reports any write error it swallowed.
	Close() error
}

// MemorySink buffers events in memory. The harness gives every job a
// private MemorySink and replays the buffers in job submission order, so
// the campaign stream is deterministic under any worker count.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty buffer sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit appends the event.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the buffered events in emission order.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Close is a no-op.
func (m *MemorySink) Close() error { return nil }

// JSONLSink serialises each event as one JSON object per line. Non-finite
// floats (a timed-out report's NaN speedup) are rendered as strings, since
// JSON has no encoding for them; everything else round-trips.
//
// A mid-stream write error does not vanish: the sink remembers which
// event failed, counts every event lost from that point on (the failed
// write and everything dropped after it), and Close reports all of it.
// WriteErrors exposes the running count so callers can surface a
// telemetry_write_errors-style counter while the stream is still live.
type JSONLSink struct {
	mu      sync.Mutex
	enc     *json.Encoder
	err     error
	errSeq  uint64 // sequence number of the event whose write failed
	dropped uint64 // events discarded after the failure, failed one included
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one line. After the first write error the sink goes quiet
// (counting what it drops) and Close reports the error.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		s.dropped++
		return
	}
	e.Fields = finiteFields(e.Fields)
	if err := s.enc.Encode(e); err != nil {
		s.err = err
		s.errSeq = e.Seq
		s.dropped = 1
	}
}

// WriteErrors returns how many events have been lost so far: zero while
// the stream is healthy, otherwise the failed write plus every event
// dropped after it.
func (s *JSONLSink) WriteErrors() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close reports the first write error, naming the event that hit it and
// how many events were lost in total.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		return nil
	}
	return fmt.Errorf("telemetry: write event seq %d: %w (%d events lost)", s.errSeq, s.err, s.dropped)
}

// FiniteEvent returns e with non-finite float64 fields (a timed-out
// report's NaN speedup) replaced by their string forms, exactly as the
// JSONL sink serialises them. Normalising at the source lets buffered,
// journalled, and re-served copies of an event marshal to the same bytes
// as the live stream. The fields map is copied only when needed.
func FiniteEvent(e Event) Event {
	e.Fields = finiteFields(e.Fields)
	return e
}

// FiniteEvents maps FiniteEvent over a copy of events.
func FiniteEvents(events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		out[i] = FiniteEvent(e)
	}
	return out
}

// finiteFields replaces non-finite float64 values with their string forms
// so the event stays marshallable. The map is copied only when needed.
func finiteFields(fields map[string]any) map[string]any {
	var out map[string]any
	for k, v := range fields {
		f, ok := v.(float64)
		if !ok || (!math.IsNaN(f) && !math.IsInf(f, 0)) {
			continue
		}
		if out == nil {
			out = make(map[string]any, len(fields))
			for k2, v2 := range fields {
				out[k2] = v2
			}
		}
		out[k] = formatFloat(f)
	}
	if out == nil {
		return fields
	}
	return out
}

// Stream assigns monotonic sequence numbers and forwards events to a
// sink. A nil *Stream or a nil sink drops everything.
type Stream struct {
	mu   sync.Mutex
	seq  uint64
	sink Sink
}

// NewStream returns a stream over sink (which may be nil).
func NewStream(sink Sink) *Stream { return &Stream{sink: sink} }

// Emit numbers and forwards one event.
func (s *Stream) Emit(name string, fields map[string]any) {
	if s == nil || s.sink == nil {
		return
	}
	s.mu.Lock()
	s.seq++
	e := Event{Seq: s.seq, Name: name, Fields: fields}
	s.sink.Emit(e)
	s.mu.Unlock()
}

// Replay forwards already-recorded events, renumbering them into this
// stream's sequence. The harness uses it to splice per-job buffers into
// the campaign stream in job order.
func (s *Stream) Replay(events []Event) {
	if s == nil || s.sink == nil {
		return
	}
	s.mu.Lock()
	for _, e := range events {
		s.seq++
		e.Seq = s.seq
		s.sink.Emit(e)
	}
	s.mu.Unlock()
}

// Seq returns the number of events emitted so far.
func (s *Stream) Seq() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
