package ctxfirst

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestCtxfirst(t *testing.T) {
	analysistest.Run(t, Analyzer, "ctxconv")
}
