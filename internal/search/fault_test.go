package search

import (
	"errors"
	"testing"
)

// TestSetFailAtInjectsTransient pins the fault-injection contract: paid
// evaluation number n dies with ErrTransient, the dying build's time is
// charged as lost work, cache hits do not arm the fault, and EV does not
// count the evaluation that never completed.
func TestSetFailAtInjectsTransient(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByCluster, 1e-8)
	e.SetFailAt(2)

	one := NewSet(3)
	one.Add(0)
	if _, err := e.Evaluate(one); err != nil {
		t.Fatalf("evaluation 1 should survive: %v", err)
	}
	// Cache hit: free, and must not trip the fault armed for eval 2.
	if _, err := e.Evaluate(one); err != nil {
		t.Fatalf("cache hit tripped the fault: %v", err)
	}
	spent := e.Spent()

	two := NewSet(3)
	two.Add(1)
	_, err := e.Evaluate(two)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("evaluation 2 error = %v, want ErrTransient", err)
	}
	if errors.Is(err, ErrBudgetExhausted) {
		t.Error("transient fault must be distinct from budget exhaustion")
	}
	if e.Evaluated() != 1 {
		t.Errorf("EV = %d, the dying evaluation must not count", e.Evaluated())
	}
	if e.Spent() <= spent {
		t.Error("the dying evaluation's build time was not charged")
	}
}

// TestStrategySurfacesTransientInOutcome checks that a strategy hit by a
// node fault reports it via Outcome.Err instead of masking it as a
// timeout.
func TestStrategySurfacesTransientInOutcome(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByCluster, 1e-8)
	e.SetFailAt(1)
	out := DeltaDebug{}.Search(e)
	if !errors.Is(out.Err, ErrTransient) {
		t.Fatalf("Outcome.Err = %v, want ErrTransient", out.Err)
	}
	if out.TimedOut {
		t.Error("transient fault reported as timeout")
	}
}

// TestTimeoutLeavesOutcomeErrNil: budget exhaustion is an expected
// outcome, not an error.
func TestTimeoutLeavesOutcomeErrNil(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByCluster, 1e-8)
	e.SetBudget(e.Spent())
	out := DeltaDebug{}.Search(e)
	if out.Err != nil {
		t.Errorf("Outcome.Err = %v on timeout, want nil", out.Err)
	}
	if !out.TimedOut {
		t.Error("budget exhaustion not reported as timeout")
	}
}
