package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment format (see DESIGN.md "Durable result store" for the full
// spec). A segment is a fixed 24-byte header followed by append-only
// records:
//
//	header:  magic[8] "mixpstor" | version u32 | fingerprint u64 | crc u32
//	record:  keyLen u32 | valLen u32 | key | val | crc u32
//
// All integers are little-endian. Both CRCs are CRC32-C (Castagnoli)
// over every preceding byte of their unit (header: magic+version+
// fingerprint; record: both length words, key, and value). The checksum
// trailing the record rather than leading it is what makes torn-tail
// detection unambiguous: a record is valid iff it is fully contained in
// the file and its checksum matches, so the longest valid prefix of a
// segment is exactly the set of records whose append completed.

const (
	segMagic   = "mixpstor"
	segVersion = 1
	// headerLen is the fixed segment header size.
	headerLen = 8 + 4 + 8 + 4
	// recordOverhead is the framing cost per record.
	recordOverhead = 4 + 4 + 4
	// maxKeyLen and maxValLen bound the length words during recovery;
	// anything larger is corruption, not a record.
	maxKeyLen = 1 << 20
	maxValLen = 1 << 30
)

// castagnoli is the CRC32-C table shared by every checksum in the store.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendHeader appends a segment header for the given fingerprint.
func appendHeader(dst []byte, fingerprint uint64) []byte {
	off := len(dst)
	dst = append(dst, segMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, segVersion)
	dst = binary.LittleEndian.AppendUint64(dst, fingerprint)
	crc := crc32.Checksum(dst[off:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// parseHeader validates a segment header and returns its fingerprint.
func parseHeader(b []byte) (fingerprint uint64, err error) {
	if len(b) < headerLen {
		return 0, fmt.Errorf("short header: %d bytes", len(b))
	}
	if string(b[:8]) != segMagic {
		return 0, fmt.Errorf("bad magic %q", b[:8])
	}
	crc := crc32.Checksum(b[:headerLen-4], castagnoli)
	if got := binary.LittleEndian.Uint32(b[headerLen-4 : headerLen]); got != crc {
		return 0, fmt.Errorf("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != segVersion {
		return 0, fmt.Errorf("%w: segment version %d, this build writes %d",
			ErrVersion, v, segVersion)
	}
	return binary.LittleEndian.Uint64(b[12:20]), nil
}

// appendRecord appends one framed record.
func appendRecord(dst, key, val []byte) []byte {
	off := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
	dst = append(dst, key...)
	dst = append(dst, val...)
	crc := crc32.Checksum(dst[off:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// recordSize is the on-disk size of a record with the given key and
// value lengths.
func recordSize(klen, vlen int) int64 {
	return int64(recordOverhead + klen + vlen)
}

// scanned is one record recovered from a segment scan.
type scanned struct {
	key []byte
	off int64 // offset of the record's first byte in the segment
	// klen and vlen locate the value inside the record.
	klen, vlen uint32
}

// scanResult is the outcome of scanning one segment's record region.
type scanResult struct {
	recs []scanned
	// validLen is the byte length of the longest valid prefix
	// (header included).
	validLen int64
	// torn is non-nil when the scan stopped before EOF: the remainder is
	// either a torn tail or corruption, described by the error.
	torn error
}

// scanSegment reads every valid record of an open segment file and
// reports the longest valid checksummed prefix. It never fails on
// corrupt data - corruption just ends the prefix - so callers decide
// whether to truncate (torn tail of the active segment) or quarantine
// (a sealed segment that should have been immutable).
func scanSegment(f *os.File) (scanResult, error) {
	info, err := f.Stat()
	if err != nil {
		return scanResult{}, err
	}
	size := info.Size()
	res := scanResult{validLen: headerLen}
	var lenbuf [8]byte
	for off := int64(headerLen); off < size; {
		if size-off < int64(len(lenbuf)) {
			res.torn = fmt.Errorf("truncated length prefix at offset %d", off)
			return res, nil
		}
		if _, err := f.ReadAt(lenbuf[:], off); err != nil {
			return res, fmt.Errorf("read record lengths at %d: %w", off, err)
		}
		klen := binary.LittleEndian.Uint32(lenbuf[0:4])
		vlen := binary.LittleEndian.Uint32(lenbuf[4:8])
		if klen == 0 || klen > maxKeyLen || vlen > maxValLen {
			res.torn = fmt.Errorf("implausible record lengths key=%d val=%d at offset %d", klen, vlen, off)
			return res, nil
		}
		total := recordSize(int(klen), int(vlen))
		if off+total > size {
			res.torn = fmt.Errorf("record at offset %d extends past EOF", off)
			return res, nil
		}
		body := make([]byte, total)
		if _, err := f.ReadAt(body, off); err != nil {
			return res, fmt.Errorf("read record at %d: %w", off, err)
		}
		want := binary.LittleEndian.Uint32(body[total-4:])
		if got := crc32.Checksum(body[:total-4], castagnoli); got != want {
			res.torn = fmt.Errorf("record checksum mismatch at offset %d", off)
			return res, nil
		}
		key := make([]byte, klen)
		copy(key, body[8:8+klen])
		res.recs = append(res.recs, scanned{key: key, off: off, klen: klen, vlen: vlen})
		off += total
		res.validLen = off
	}
	return res, nil
}

// readValue reads and re-verifies one record, returning its value. The
// checksum is checked on every read, not only at open, so silent media
// corruption surfaces as a miss instead of a poisoned result.
func readValue(f *os.File, loc location) ([]byte, error) {
	total := recordSize(int(loc.klen), int(loc.vlen))
	body := make([]byte, total)
	if _, err := f.ReadAt(body, loc.off); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	want := binary.LittleEndian.Uint32(body[total-4:])
	if got := crc32.Checksum(body[:total-4], castagnoli); got != want {
		return nil, fmt.Errorf("record checksum mismatch at offset %d", loc.off)
	}
	val := body[8+int(loc.klen) : 8+int(loc.klen)+int(loc.vlen)]
	out := make([]byte, len(val))
	copy(out, val)
	return out, nil
}
