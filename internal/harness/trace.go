package harness

import (
	"repro/internal/trace"
)

// maxTraceErr caps attempt error text in trace args: errors from
// recovered panics carry multi-line stack dumps whose goroutine IDs and
// addresses vary run to run, so only the first line (which is stable)
// may enter a byte-comparable artifact.
const maxTraceErr = 200

// BuildTrace assembles the campaign's deterministic span tree from its
// specs and results. It is a pure function of per-job accounting that
// the scheduler computes identically under any worker count and cache
// mode - and that the checkpoint journal round-trips in full - so the
// trace for a given campaign spec is byte-identical however (and in
// however many pieces) the campaign actually ran.
func BuildTrace(name string, specs []Spec, results []JobResult) *trace.Trace {
	jobs := make([]trace.Job, 0, len(results))
	for i, r := range results {
		j := trace.Job{
			Index:    i,
			Degraded: r.Degraded,
			Skipped:  r.Skipped,
			Canceled: r.Report.Canceled || (r.Skipped && r.Err != nil),
		}
		if i < len(specs) {
			j.Entry = specs[i].Name
			j.Bench = specs[i].Bin
			j.Algorithm = specs[i].Analysis.Algorithm
			j.Threshold = specs[i].Analysis.Threshold
		}
		for _, a := range r.Attempts {
			j.Attempts = append(j.Attempts, trace.Attempt{
				Number:         a.Attempt,
				BuildSeconds:   a.BuildSeconds,
				RunSeconds:     a.RunSeconds,
				SpentSeconds:   a.SpentSeconds,
				BackoffSeconds: a.BackoffSeconds,
				Evaluations:    a.Evaluations,
				CacheHits:      a.CacheHits,
				Fault:          a.Fault,
				Err:            truncateErr(a.Err),
			})
		}
		if len(j.Attempts) == 0 && !r.Skipped {
			// Results without an attempt history (hand-built in tests):
			// synthesise the single clean attempt the report describes.
			j.Attempts = []trace.Attempt{{
				Number:       1,
				BuildSeconds: r.Report.BuildSeconds,
				RunSeconds:   r.Report.RunSeconds,
				SpentSeconds: r.Report.SpentSeconds,
				Evaluations:  r.Report.Evaluated,
				CacheHits:    r.Report.CacheHits,
			}}
		}
		jobs = append(jobs, j)
	}
	return trace.Assemble(name, jobs)
}

// truncateErr keeps the first line of an error, capped at maxTraceErr
// bytes.
func truncateErr(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			s = s[:i]
			break
		}
	}
	if len(s) > maxTraceErr {
		s = s[:maxTraceErr]
	}
	return s
}
