package mp

// Array is a dynamically allocated floating-point buffer owned by one
// tunable variable. It is the reproduction of the paper's mp_malloc:
// the buffer's element width follows the precision the active configuration
// assigns to its variable, so demoting the variable halves both the
// working-set footprint and the traffic of every access.
//
// Values are stored as float64 for uniform access, but every store narrows
// through the variable's precision first, so a single-precision array holds
// exactly the values a real float buffer would.
type Array struct {
	tape *Tape
	v    VarID
	data []float64

	// Frozen-mode state: fz caches the owning tape's frozen flag (tapes
	// never unfreeze, so it is fixed at allocation), prec caches the
	// variable's rounding precision, and pending counts deferred traffic
	// in elements, multiplied out at the next flush (see Tape.Freeze).
	fz      bool
	prec    Prec
	pending uint64
}

// NewArray allocates an n-element buffer for variable v and charges its
// footprint at the width the configuration assigns to v.
func (t *Tape) NewArray(v VarID, n int) *Array {
	w := t.storageWidth(v)
	bytes := uint64(n) * w.Size() * t.scale
	switch w.wclass() {
	case 1:
		t.cost.Footprint32 += bytes
	case 2:
		t.cost.Footprint16 += bytes
	default:
		t.cost.Footprint64 += bytes
	}
	if t.frozen {
		a := t.reuseArray(v, n)
		if a == nil {
			a = &Array{tape: t, v: v, data: make([]float64, n), fz: true, prec: t.prec[v]}
		}
		t.arrays = append(t.arrays, a)
		return a
	}
	return &Array{tape: t, v: v, data: make([]float64, n)}
}

// Len returns the number of elements.
func (a *Array) Len() int { return len(a.data) }

// Var returns the tunable variable that owns the buffer.
func (a *Array) Var() VarID { return a.v }

// Prec reports the element precision under the active configuration.
func (a *Array) Prec() Prec { return a.tape.prec[a.v] }

// Get loads element i, charging one element of read traffic.
func (a *Array) Get(i int) float64 {
	a.charge(1)
	return a.data[i]
}

// Set stores x into element i, narrowing to the array's precision and
// charging one element of write traffic.
func (a *Array) Set(i int, x float64) {
	if a.fz {
		a.pending++
		a.data[i] = a.prec.Round(x)
		return
	}
	a.charge(1)
	a.data[i] = a.tape.prec[a.v].Round(x)
}

// Fill stores x into every element (one rounding, n elements of traffic).
func (a *Array) Fill(x float64) {
	a.charge(uint64(len(a.data)))
	r := a.roundPrec().Round(x)
	for i := range a.data {
		a.data[i] = r
	}
}

// GetN copies elements [lo, lo+len(dst)) into dst, charging len(dst)
// elements of read traffic - exactly equivalent to one Get per element,
// in one traffic charge and one bounds check.
func (a *Array) GetN(lo int, dst []float64) {
	a.charge(uint64(len(dst)))
	copy(dst, a.data[lo:lo+len(dst)])
}

// SetN stores src into elements [lo, lo+len(src)), narrowing each value
// to the array's precision and charging len(src) elements of write
// traffic - exactly equivalent to one Set per element.
func (a *Array) SetN(lo int, src []float64) {
	a.charge(uint64(len(src)))
	p := a.roundPrec()
	if p == F64 {
		copy(a.data[lo:lo+len(src)], src)
		return
	}
	for i, x := range src {
		a.data[lo+i] = p.Round(x)
	}
}

// SetEach stores f(i) into every element in index order, narrowing each
// value to the array's precision and charging Len elements of write
// traffic - exactly equivalent to one Set per element. It is the bulk
// form benchmark initialisation loops use: f typically draws from a
// seeded RNG, and the index-order guarantee keeps the value stream
// identical to the element-wise loop it replaces.
func (a *Array) SetEach(f func(i int) float64) {
	a.charge(uint64(len(a.data)))
	t := a.tape
	if t.rep != nil {
		t.rep.fill(a)
		return
	}
	p := a.roundPrec()
	if t.rec != nil {
		t.rec.fill(a, p, f)
		return
	}
	for i := range a.data {
		a.data[i] = p.Round(f(i))
	}
}

// Snapshot returns a copy of the buffer contents without charging traffic.
// Verification reads output buffers through Snapshot so that measuring
// quality does not perturb the cost of the run being measured.
func (a *Array) Snapshot() []float64 {
	out := make([]float64, len(a.data))
	copy(out, a.data)
	return out
}

// charge records n elements of traffic at the array's current width. The
// width switch and scale multiply are precomputed on the tape (see
// Tape.refreshVar), leaving a single multiply and two adds on the hot
// path of every kernel loop; a frozen tape defers even those, counting
// elements until the next flush.
func (a *Array) charge(n uint64) {
	if a.fz {
		a.pending += n
		return
	}
	t := a.tape
	bytes := n * t.byteFactor[a.v]
	*t.byteSink[a.v] += bytes
	t.perVar[a.v].Bytes += bytes
}

// flush settles deferred traffic. The charge factors are constant between
// flushes (every factor change flushes first), so one multiply over the
// summed element count equals the eager per-access charges exactly.
func (a *Array) flush() {
	if a.pending == 0 {
		return
	}
	t := a.tape
	bytes := a.pending * t.byteFactor[a.v]
	*t.byteSink[a.v] += bytes
	t.perVar[a.v].Bytes += bytes
	a.pending = 0
}

// roundPrec is the precision stores narrow through: cached on the array
// while the tape is frozen, read live otherwise.
func (a *Array) roundPrec() Prec {
	if a.fz {
		return a.prec
	}
	return a.tape.prec[a.v]
}
