// Package runcache is a process-wide memo store for deterministic
// benchmark executions. The paper's evaluation is a multi-day cluster
// campaign because every (algorithm, benchmark, threshold) job re-executes
// configurations independently; in this reproduction every execution is a
// pure function of (benchmark, workload seed, demotion semantics, machine
// model, configuration), so the whole campaign can share one memo table.
// The baseline, the all-single probe, and every single-variable candidate
// that greedy, combinational, and delta debugging all visit are then
// interpreted once per process instead of once per job - CRAFT's
// within-analysis memoisation lifted to the campaign level.
//
// The store is sharded for concurrency and deduplicates in flight: when
// two workers propose the same configuration at the same moment, one
// executes while the other waits for the result (singleflight). Results
// are returned as clones, so no caller can corrupt the shared entry.
//
// Determinism contract: the cache changes which executions physically run,
// never what any caller observes. Callers charge simulated build+run time
// per call, whether the result came from an execution or from the table,
// so budgets, EV counts, traces, and campaign telemetry are byte-identical
// with the cache on or off, under any worker count. The cache's own
// counters are the one exception - the hit/miss split between workers
// depends on real scheduling - which is why they live on the cache's own
// recorder, never in the deterministic per-job telemetry merge.
package runcache

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Semantics names the demotion tier an execution ran under; executions
// with different semantics never share results.
type Semantics uint8

const (
	// Source is source-level demotion (storage and arithmetic narrow).
	Source Semantics = iota
	// IR is IR-level demotion (arithmetic narrows, storage stays double).
	IR
)

// String returns the tier name.
func (s Semantics) String() string {
	if s == IR {
		return "ir"
	}
	return "source"
}

// Key identifies one deterministic execution. Two executions with equal
// keys produce identical results; everything that can change a result -
// the benchmark, the workload seed, the demotion semantics, the machine
// model and measurement protocol, and the precision configuration - is a
// component.
type Key struct {
	// Bench is the benchmark's suite-wide name.
	Bench string
	// Seed is the workload seed.
	Seed int64
	// Semantics is the demotion tier.
	Semantics Semantics
	// Model fingerprints the machine model and measurement protocol.
	Model uint64
	// Config is the configuration's compact digit key ("" = all-double).
	Config string
}

// FNV-1a 64-bit constants, shared by the key hash and callers that build
// Model fingerprints.
const (
	FNVOffset64 uint64 = 14695981039346656037
	FNVPrime64  uint64 = 1099511628211
)

// shardCount is a power of two; benchmarks rarely need more than a few
// shards, but contended campaign workers benefit from spreading the locks.
const shardCount = 16

// hash mixes the key into the shard index.
func (k Key) hash() uint64 {
	h := FNVOffset64
	for i := 0; i < len(k.Bench); i++ {
		h = (h ^ uint64(k.Bench[i])) * FNVPrime64
	}
	h = (h ^ uint64(k.Seed)) * FNVPrime64
	h = (h ^ uint64(k.Semantics)) * FNVPrime64
	h = (h ^ k.Model) * FNVPrime64
	for i := 0; i < len(k.Config); i++ {
		h = (h ^ uint64(k.Config[i])) * FNVPrime64
	}
	return h
}

// AppendBinary appends the key's canonical binary form to dst and
// returns the extended slice. This is the content address used by the
// durable store tier: bench name, NUL, then the fixed-width numeric
// components, then the config digits. Bench names never contain NUL, so
// the encoding is injective, and every component is little-endian so the
// bytes are stable across architectures.
//
//mixplint:key Key -- the content address must cover every purity-key component, or distinct runs collide in the durable tier
func (k Key) AppendBinary(dst []byte) []byte {
	dst = append(dst, k.Bench...)
	dst = append(dst, 0)
	dst = append(dst,
		byte(k.Seed), byte(k.Seed>>8), byte(k.Seed>>16), byte(k.Seed>>24),
		byte(k.Seed>>32), byte(k.Seed>>40), byte(k.Seed>>48), byte(k.Seed>>56))
	dst = append(dst, byte(k.Semantics))
	dst = append(dst,
		byte(k.Model), byte(k.Model>>8), byte(k.Model>>16), byte(k.Model>>24),
		byte(k.Model>>32), byte(k.Model>>40), byte(k.Model>>48), byte(k.Model>>56))
	return append(dst, k.Config...)
}

// Tier is a second, typically durable, cache level behind the in-memory
// table: the leader for a key consults the tier before executing, and
// publishes fresh executions to it. Load and Store must be safe for
// concurrent use; Store may be asynchronous (write-behind). The tier
// only changes which executions physically run - a tier hit is
// indistinguishable from an execution to every caller - so the
// determinism contract in the package comment holds with any tier.
type Tier[V any] interface {
	// Load returns the tier's value for k, or false. The returned value
	// is owned by the caller.
	Load(k Key) (V, bool)
	// Store publishes a freshly executed value to the tier. The tier
	// must not retain v's reference fields past the call (encode or
	// copy before returning).
	Store(k Key, v V)
}

// entry is one memoised execution. done is closed once val is final;
// panicked marks a leader that died mid-execution (its waiters retry).
type entry[V any] struct {
	done     chan struct{}
	val      V
	panicked bool
}

// shard is one lock domain of the table.
type shard[V any] struct {
	mu      sync.Mutex
	entries map[Key]*entry[V]
}

// Stats is a point-in-time view of the cache's traffic.
type Stats struct {
	// Hits counts calls served from a completed or in-flight execution.
	Hits uint64
	// Misses counts calls that led the execution for their key.
	Misses uint64
	// InflightWaits counts hits that had to block on an execution still
	// in flight. Unlike Hits and Misses (whose totals are a function of
	// the campaign alone), this split depends on real worker scheduling.
	InflightWaits uint64
	// Entries is the number of completed results resident.
	Entries uint64
	// TierHits counts leader calls served by the durable tier instead of
	// an execution; TierMisses counts leader calls the tier could not
	// serve; TierWrites counts fresh executions published to the tier.
	// All zero when no tier is configured.
	TierHits   uint64
	TierMisses uint64
	TierWrites uint64
}

// Options configures a Cache.
type Options[V any] struct {
	// Clone deep-copies a value; every Do call returns a clone so callers
	// can never corrupt the shared entry. Nil means values are returned
	// as-is (only safe for value types without reference fields).
	Clone func(V) V
	// Telemetry, when non-nil, receives the cache's counters
	// (mixpbench_runcache_{hits,misses,inflight_waits}_total, labelled by
	// bench) and one "runcache_hit" event per hit. These reflect real
	// scheduling, so keep this recorder out of any deterministic
	// snapshot; see the package comment.
	Telemetry *telemetry.Recorder
	// Tier, when non-nil, is the durable second level consulted by
	// leaders before executing and fed by fresh executions (see Tier).
	Tier Tier[V]
}

// Cache is a concurrent, sharded memo store with singleflight
// deduplication. The zero value is not usable; construct with New.
type Cache[V any] struct {
	opts   Options[V]
	shards [shardCount]shard[V]

	hits       atomic.Uint64
	misses     atomic.Uint64
	waits      atomic.Uint64
	entries    atomic.Uint64
	tierHits   atomic.Uint64
	tierMisses atomic.Uint64
	tierWrites atomic.Uint64
}

// New returns an empty cache.
func New[V any](opts Options[V]) *Cache[V] {
	c := &Cache[V]{opts: opts}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry[V])
	}
	return c
}

// Do returns the memoised value for k, executing fn to produce it on the
// first call. Concurrent calls for the same key execute fn once: the
// first caller leads, the rest wait for its result. The returned value is
// a clone (when Options.Clone is set), so mutating it cannot corrupt the
// store. A nil cache executes fn directly.
//
// If the leading call panics, its entry is discarded and each waiter
// retries Do - typically reproducing the panic in its own call frame, so
// per-job panic recovery behaves exactly as it would without the cache.
func (c *Cache[V]) Do(k Key, fn func() V) V {
	v, _ := c.DoContext(nil, k, fn)
	return v
}

// DoContext is Do with early release of singleflight waiters: a caller
// blocked on another caller's in-flight execution returns the context's
// error as soon as ctx is done instead of waiting the leader out. The
// leader itself always runs fn to completion - abandoning an execution
// halfway would poison the entry for every other tenant - so only the
// waiting side observes cancellation. A nil ctx never cancels.
func (c *Cache[V]) DoContext(ctx context.Context, k Key, fn func() V) (V, error) {
	if c == nil {
		return fn(), nil
	}
	// The job probe (when the scheduler installed one) attributes this
	// call's hit/miss/wait to its campaign job. Every Probe method is
	// nil-safe, so uninstrumented callers pay one context lookup only.
	probe := trace.ProbeFrom(ctx)
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	sh := &c.shards[k.hash()&(shardCount-1)]
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				var zero V
				return zero, err
			}
		}
		sh.mu.Lock()
		e, ok := sh.entries[k]
		if ok {
			sh.mu.Unlock()
			select {
			case <-e.done:
			default:
				c.waits.Add(1)
				probe.InflightWait()
				c.count("mixpbench_runcache_inflight_waits_total", k)
				select {
				case <-e.done:
				case <-ctxDone:
					var zero V
					return zero, ctx.Err()
				}
			}
			if e.panicked {
				// The leader died; take over (and most likely reproduce
				// its panic under this caller's own recovery).
				continue
			}
			c.hits.Add(1)
			probe.CacheHit()
			c.count("mixpbench_runcache_hits_total", k)
			if tel := c.opts.Telemetry; tel != nil {
				tel.Emit("runcache_hit", map[string]any{
					"bench":     k.Bench,
					"config":    k.Config,
					"semantics": k.Semantics.String(),
				})
			}
			return c.clone(e.val), nil
		}
		e = &entry[V]{done: make(chan struct{})}
		sh.entries[k] = e
		sh.mu.Unlock()

		completed := false
		defer func() {
			if !completed {
				// fn (or the tier) panicked: discard the entry and release
				// any waiters into their own attempts before the panic
				// unwinds.
				e.panicked = true
				sh.mu.Lock()
				delete(sh.entries, k)
				sh.mu.Unlock()
				close(e.done)
			}
		}()
		if tier := c.opts.Tier; tier != nil {
			if v, ok := tier.Load(k); ok {
				// Served by the durable tier: to every caller this is
				// indistinguishable from having executed fn (same value,
				// same charging), it just cost a disk read instead.
				e.val = v
				completed = true
				close(e.done)
				c.entries.Add(1)
				c.hits.Add(1)
				c.tierHits.Add(1)
				probe.CacheHit()
				c.count("mixpbench_runcache_hits_total", k)
				c.count("mixpbench_runcache_tier_hits_total", k)
				return c.clone(e.val), nil
			}
			c.tierMisses.Add(1)
		}
		e.val = fn()
		completed = true
		close(e.done)
		c.entries.Add(1)
		c.misses.Add(1)
		probe.CacheMiss()
		c.count("mixpbench_runcache_misses_total", k)
		if tier := c.opts.Tier; tier != nil {
			tier.Store(k, e.val)
			c.tierWrites.Add(1)
		}
		return c.clone(e.val), nil
	}
}

// clone applies the configured deep copy.
func (c *Cache[V]) clone(v V) V {
	if c.opts.Clone == nil {
		return v
	}
	return c.opts.Clone(v)
}

// count bumps one bench-labelled cache counter.
func (c *Cache[V]) count(name string, k Key) {
	if tel := c.opts.Telemetry; tel != nil {
		tel.Counter(name, "bench", k.Bench).Inc()
	}
}

// Stats returns the cache's traffic counters. Hits+Misses equals the
// number of completed Do calls; Misses equals the number of distinct keys
// executed, so both are deterministic for a given campaign. InflightWaits
// is scheduling-dependent (see Stats).
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		InflightWaits: c.waits.Load(),
		Entries:       c.entries.Load(),
		TierHits:      c.tierHits.Load(),
		TierMisses:    c.tierMisses.Load(),
		TierWrites:    c.tierWrites.Load(),
	}
}

// String summarises the cache for logs.
func (c *Cache[V]) String() string {
	s := c.Stats()
	return "runcache{entries: " + strconv.FormatUint(s.Entries, 10) +
		", hits: " + strconv.FormatUint(s.Hits, 10) +
		", misses: " + strconv.FormatUint(s.Misses, 10) + "}"
}
