package search

// Combinational is the brute-force strategy (the paper's CB): it tries all
// combinations of clusters and keeps the fastest passing one. It is only
// tractable for the kernel benchmarks, which is exactly the role the paper
// assigns it - ground truth to compare the other strategies against. On a
// large space it simply runs until the analysis budget expires.
//
// Subsets are visited in descending size, so the most aggressive
// configurations (the likeliest big wins) are tested first and an early
// budget expiry still leaves a meaningful best-so-far.
type Combinational struct{}

// Name returns "CB".
func (Combinational) Name() string { return "CB" }

// Mode returns ByCluster.
func (Combinational) Mode() Mode { return ByCluster }

// Search enumerates every non-baseline rung assignment. On the default
// two-rung ladder this is every non-empty subset of the clusters, visited
// by descending size in lexicographic order - the exact historical
// enumeration. On deeper ladders it is every digit vector over the rungs,
// visited by descending rung sum so the most aggressive configurations
// still come first. Enumeration is pure - no assignment depends on
// another's evaluation - so assignments are proposed in chunks of
// searchBatchSize and handed to EvaluateBatch, which prewarms the chunk's
// compiled kernels and then evaluates in enumeration order: results, EV
// counts, and the budget-expiry point are byte-identical to the
// one-at-a-time loop.
func (c Combinational) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	p := e.Space().NumRungs()
	var (
		best    Set
		bestRes Result
		found   bool
		stopErr error
	)
	batch := make([]Set, 0, searchBatchSize)
	// flush evaluates the buffered chunk; it reports false once the
	// analysis must stop (budget exhausted, canceled, faulted).
	flush := func() bool {
		if len(batch) == 0 {
			return stopErr == nil
		}
		res, err := e.EvaluateBatch(batch)
		for i, r := range res {
			if r.Passed && (!found || r.Speedup > bestRes.Speedup) {
				best, bestRes, found = batch[i], r, true
			}
		}
		batch = batch[:0]
		if err != nil {
			stopErr = err
			return false
		}
		return true
	}
	propose := func(set Set) bool {
		batch = append(batch, set)
		if len(batch) == searchBatchSize {
			return flush()
		}
		return true
	}
enumeration:
	for sum := n * (p - 1); sum >= 1; sum-- {
		var stop bool
		if p == 2 {
			// The historical two-level order: subsets of size sum as sorted
			// index lists, lexicographically.
			stop = forEachSubsetOfSize(n, sum, propose)
		} else {
			stop = forEachVectorOfSum(n, p, sum, propose)
		}
		if stop {
			break enumeration
		}
	}
	flush()
	return finish(c.Name(), e, best, bestRes, found, stopErr)
}

// forEachSubsetOfSize visits every subset of {0..n-1} with exactly k
// members in lexicographic order, calling fn for each. fn returns false to
// stop; forEachSubsetOfSize then returns true.
func forEachSubsetOfSize(n, k int, fn func(Set) bool) bool {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		set := NewSet(n)
		for _, i := range idx {
			set.Add(i)
		}
		if !fn(set) {
			return true
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return false
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// forEachVectorOfSum visits every rung assignment over n units and p
// ladder rungs whose digits total sum, in lexicographic digit order,
// calling fn for each. fn returns false to stop; forEachVectorOfSum then
// returns true. Enumeration is lazy - nothing proportional to p^n is ever
// materialised.
func forEachVectorOfSum(n, p, sum int, fn func(Set) bool) bool {
	digits := make([]uint8, n)
	var rec func(i, rem int) bool // true = stop requested
	rec = func(i, rem int) bool {
		if i == n {
			set := Set{digits: make([]uint8, n), n: n}
			copy(set.digits, digits)
			return !fn(set)
		}
		for d := 0; d < p; d++ {
			if d > rem {
				break
			}
			if rem-d > (n-i-1)*(p-1) {
				continue // the remaining units cannot absorb the rest
			}
			digits[i] = uint8(d)
			if rec(i+1, rem-d) {
				return true
			}
		}
		digits[i] = 0
		return false
	}
	return rec(0, sum)
}
