package search

// Compositional is the paper's CM strategy, after FloatSmith: replace each
// variable individually, then repeatedly combine passing configurations
// until no composition produces anything new. The CRAFT implementation
// operates on individual variables, with Typeforge expanding each change
// to its type-change set so every variant compiles; members of one cluster
// are therefore redundant proposals, which is why the paper observes CM
// evaluating far more configurations than the cluster-level strategies -
// and timing out on variable-rich applications at loose thresholds, where
// almost every single-variable change passes and the composition frontier
// explodes combinatorially.
//
// Per the paper, "heuristics are used to reduce the number of
// configurations, but this strategy will be as slow as the combinational
// strategy when many variables can be replaced": the memoisation of
// repeated proposals is the reduction, and the composition closure is
// otherwise complete. Where few single-variable changes pass, the closure
// is small and CM terminates quickly (SRAD); where the passing set maps to
// k distinct clusters the closure is their full power set (LavaMD's 2^11 =
// 2048 configurations); and where nearly everything passes the closure is
// astronomically large and the 24-hour budget expires first - the paper's
// empty CM cells.
type Compositional struct{}

// Name returns "CM".
func (Compositional) Name() string { return "CM" }

// Mode returns ByVariable.
func (Compositional) Mode() Mode { return ByVariable }

// Search runs the individual phase and then the composition loop.
func (c Compositional) Search(e *Evaluator) Outcome {
	e.SetTypeforgeExpand(true)
	n := e.Space().NumUnits()
	var (
		best    Set
		bestRes Result
		found   bool
		stopErr error
	)
	consider := func(set Set, r Result) {
		if r.Passed && (!found || r.Speedup > bestRes.Speedup) {
			best, bestRes, found = set, r, true
		}
	}

	// Phase 1: every variable individually.
	var passing []cmCand
	seen := map[string]bool{}
	for i := 0; i < n && stopErr == nil; i++ {
		set := NewSet(n)
		set.Add(i)
		r, err := e.Evaluate(set)
		if err != nil {
			stopErr = err
			break
		}
		consider(set, r)
		if key := e.Key(set); r.Passed && !seen[key] {
			seen[key] = true
			passing = append(passing, cmCand{set, r})
		}
	}

	// Phase 2: compose passing configurations pairwise until the frontier
	// is empty. The search terminates when there are no compositions left.
	frontier := append([]cmCand(nil), passing...)
	for len(frontier) > 0 && stopErr == nil {
		var next []cmCand
	compose:
		for _, f := range frontier {
			for _, p := range passing {
				u := f.set.Union(p.set)
				if u.Equal(f.set) || u.Equal(p.set) {
					continue
				}
				key := e.Key(u)
				if seen[key] {
					continue
				}
				seen[key] = true
				r, err := e.Evaluate(u)
				if err != nil {
					stopErr = err
					break compose
				}
				consider(u, r)
				if r.Passed {
					next = append(next, cmCand{u, r})
				}
			}
		}
		passing = append(passing, next...)
		frontier = next
	}
	return finish(c.Name(), e, best, bestRes, found, stopErr)
}

// cmCand pairs a composition with its evaluation.
type cmCand struct {
	set Set
	res Result
}
