// Package search is the reproduction of the paper's search layer: the
// CRAFT generic search tool as driven by FloatSmith, plus the six
// strategies the paper compares - combinational (CB), compositional (CM),
// delta debugging (DD), hierarchical (HR), hierarchical-compositional
// (HC), and the genetic algorithm (GA) the paper adds to CRAFT.
//
// A strategy explores precision configurations over a Space of units.
// Following the paper's Section IV-A, the unit granularity differs by
// strategy: CB, DD, and GA operate on Typeforge clusters, while the
// current CRAFT implementations of CM, HR, and HC operate on individual
// variables. Variable-granularity search interacts with the type
// dependence analysis in two ways the paper highlights:
//
//   - CM composes single-variable changes, and Typeforge expands each
//     change to its full type-change set so the result compiles - which
//     makes members of one cluster redundant proposals and inflates the
//     evaluation count;
//   - HR's structural groups (functions, modules) can split a cluster, and
//     such configurations do not compile: they are charged as failed
//     evaluations, the "useless configurations" of Section IV-B.
package search

import (
	"fmt"
	"math/bits"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// Mode selects the unit granularity of a Space.
type Mode uint8

const (
	// ByCluster searches over Typeforge type-change sets: every proposed
	// configuration compiles by construction.
	ByCluster Mode = iota
	// ByVariable searches over individual variables, the granularity of
	// CRAFT's compositional and hierarchical implementations.
	ByVariable
)

// Unit is one search unit: the set of variables toggled together.
type Unit struct {
	// Label names the unit for traces (cluster index or variable name).
	Label string
	// Group is the enclosing program component (the variable's Unit for
	// ByVariable spaces; hierarchical strategies group by it).
	Group string
	// Vars lists the variable IDs the unit controls.
	Vars []mp.VarID
}

// Space is the search space over one benchmark's dependence graph.
type Space struct {
	graph *typedep.Graph
	mode  Mode
	units []Unit
}

// NewSpace builds the search space for g at the given granularity.
func NewSpace(g *typedep.Graph, mode Mode) *Space {
	s := &Space{graph: g, mode: mode}
	switch mode {
	case ByCluster:
		for _, c := range g.Clusters() {
			s.units = append(s.units, Unit{
				Label: fmt.Sprintf("cluster%d", c.Index),
				Group: g.Var(c.Members[0]).Unit,
				Vars:  c.Members,
			})
		}
	case ByVariable:
		for _, v := range g.Vars() {
			s.units = append(s.units, Unit{
				Label: v.Name,
				Group: v.Unit,
				Vars:  []mp.VarID{v.ID},
			})
		}
	default:
		panic(fmt.Sprintf("search: unknown mode %d", mode))
	}
	return s
}

// NumUnits returns the number of search units.
func (s *Space) NumUnits() int { return len(s.units) }

// Unit returns unit i.
func (s *Space) Unit(i int) Unit { return s.units[i] }

// Graph returns the underlying dependence graph.
func (s *Space) Graph() *typedep.Graph { return s.graph }

// Mode returns the unit granularity.
func (s *Space) Mode() Mode { return s.mode }

// Expand materialises a unit selection as a variable-level precision
// configuration. For ByVariable spaces expand reports, in its second
// result, whether the configuration compiles: a selection that demotes
// part of a cluster but not all of it does not.
//
// When typeforgeExpand is true (the compositional strategies), each
// selected variable pulls its whole type-change set, as Typeforge's
// transformation does to keep the refactored source compilable.
func (s *Space) Expand(set Set, typeforgeExpand bool) (bench.Config, bool) {
	cfg := make(bench.Config, s.graph.NumVars())
	for i := 0; i < len(s.units); i++ {
		if !set.Has(i) {
			continue
		}
		for _, v := range s.units[i].Vars {
			cfg[v] = mp.F32
		}
	}
	if s.mode == ByVariable && typeforgeExpand {
		// Pull every selected variable's cluster.
		for _, c := range s.graph.Clusters() {
			demoted := false
			for _, m := range c.Members {
				if cfg[m] == mp.F32 {
					demoted = true
					break
				}
			}
			if demoted {
				for _, m := range c.Members {
					cfg[m] = mp.F32
				}
			}
		}
	}
	valid := s.graph.Valid(func(v mp.VarID) mp.Prec { return cfg[v] })
	return cfg, valid
}

// Set is a fixed-capacity bitset over search units.
type Set struct {
	bits []uint64
	n    int
}

// NewSet returns an empty set over n units.
func NewSet(n int) Set {
	return Set{bits: make([]uint64, (n+63)/64), n: n}
}

// FullSet returns the set containing every unit.
func FullSet(n int) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

// Len returns the capacity (number of units addressed).
func (s Set) Len() int { return s.n }

// Has reports membership of unit i.
func (s Set) Has(i int) bool { return s.bits[i/64]&(1<<(i%64)) != 0 }

// Add inserts unit i.
func (s *Set) Add(i int) { s.bits[i/64] |= 1 << (i % 64) }

// Remove deletes unit i.
func (s *Set) Remove(i int) { s.bits[i/64] &^= 1 << (i % 64) }

// Count returns the number of members.
func (s Set) Count() int {
	c := 0
	for _, w := range s.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := Set{bits: make([]uint64, len(s.bits)), n: s.n}
	copy(out.bits, s.bits)
	return out
}

// Union returns s | o.
func (s Set) Union(o Set) Set {
	out := s.Clone()
	for i, w := range o.bits {
		out.bits[i] |= w
	}
	return out
}

// Equal reports whether both sets have identical members.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.bits {
		if s.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string identity.
func (s Set) Key() string {
	return fmt.Sprintf("%x", s.bits)
}

// Members returns the member indices in ascending order.
func (s Set) Members() []int {
	var out []int
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the set as a 0/1 mask for traces.
func (s Set) String() string {
	b := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
