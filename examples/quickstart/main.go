// Quickstart: tune one kernel with the delta-debugging strategy.
//
// This is the suite's smallest end-to-end flow: pick a benchmark, run the
// search at a quality threshold, and inspect what the tool found - which
// variables can live in single precision, how much faster the program
// gets, and how much accuracy it costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mixpbench "repro"
)

func main() {
	b, err := mixpbench.Benchmark("hydro-1d")
	if err != nil {
		log.Fatal(err)
	}
	g := b.Graph()
	fmt.Printf("%s: %s\n", b.Name(), b.Description())
	fmt.Printf("tunable variables: %d in %d type-dependence clusters\n\n",
		g.NumVars(), g.NumClusters())

	res, err := mixpbench.Tune(b, mixpbench.TuneOptions{
		Algorithm: "DD",
		Threshold: 1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no configuration passed the threshold")
		return
	}

	fmt.Printf("delta debugging evaluated %d configurations\n", res.Evaluated)
	fmt.Printf("speedup: %.2fx at %s error %.3g\n", res.Speedup, b.Metric(), res.Error)
	fmt.Println("\nconverged configuration:")
	for _, v := range g.Vars() {
		fmt.Printf("  %-8s (%s in %s): %v\n", v.Name, v.Kind, v.Unit, res.Config[v.ID])
	}
}
