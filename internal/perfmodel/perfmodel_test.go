package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mp"
)

func TestBandwidthSteps(t *testing.T) {
	m := Default()
	if got := m.Bandwidth(16 << 10); got != m.Caches[0].Bandwidth {
		t.Errorf("16KiB -> %g, want L1", got)
	}
	if got := m.Bandwidth(64 << 10); got != m.Caches[1].Bandwidth {
		t.Errorf("64KiB -> %g, want L2", got)
	}
	if got := m.Bandwidth(1 << 20); got != m.Caches[2].Bandwidth {
		t.Errorf("1MiB -> %g, want L3", got)
	}
	if got := m.Bandwidth(1 << 30); got != m.DRAMBandwidth {
		t.Errorf("1GiB -> %g, want DRAM", got)
	}
}

func TestBandwidthMonotoneNonIncreasing(t *testing.T) {
	m := Default()
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return m.Bandwidth(x) >= m.Bandwidth(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSinglePrecisionComputeIsTwiceAsFast(t *testing.T) {
	m := Default()
	d := m.Time(mp.Cost{Flops64: 1e9})
	s := m.Time(mp.Cost{Flops32: 1e9})
	ratio := (d - m.RunOverhead) / (s - m.RunOverhead)
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("f64/f32 compute ratio = %g, want 2", ratio)
	}
}

func TestMemoryBoundHalvesWithTraffic(t *testing.T) {
	m := Default()
	// Working set fixed in DRAM territory at both widths, so only traffic
	// changes: speedup must be exactly 2 (minus the overhead share).
	d := m.Time(mp.Cost{Bytes64: 2e9, Footprint64: 1 << 30})
	s := m.Time(mp.Cost{Bytes32: 1e9, Footprint32: 1 << 29})
	if d <= s {
		t.Fatalf("double run (%g) should be slower than single (%g)", d, s)
	}
	ratio := (d - m.RunOverhead) / (s - m.RunOverhead)
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("memory-bound ratio = %g, want 2", ratio)
	}
}

func TestCacheStepExceedsTwoX(t *testing.T) {
	m := Default()
	// Working set straddles the L3 boundary: 30 MiB at double precision
	// misses, 15 MiB at single fits. The speedup must exceed the 2x that
	// traffic halving alone can provide - this is the LavaMD mechanism.
	wsD := uint64(30 << 20)
	d := m.Time(mp.Cost{Bytes64: 10 * wsD, Footprint64: wsD})
	s := m.Time(mp.Cost{Bytes32: 10 * wsD / 2, Footprint32: wsD / 2})
	ratio := d / s
	if ratio <= 2 {
		t.Errorf("cache-step speedup = %g, want > 2", ratio)
	}
}

func TestCastsAlwaysAddTime(t *testing.T) {
	m := Default()
	base := mp.Cost{Flops64: 1e8, Bytes64: 1e9, Footprint64: 1 << 30}
	withCasts := base
	withCasts.Casts = 1e8
	if m.Time(withCasts) <= m.Time(base) {
		t.Error("casts must add time even when memory bound")
	}
}

func TestRooflineTakesMax(t *testing.T) {
	m := Default()
	// Compute-dominated: memory contribution must be hidden.
	c := mp.Cost{Flops64: 1e10, Bytes64: 8, Footprint64: 8}
	want := m.RunOverhead + 1e10/m.Rate64
	if got := m.Time(c); math.Abs(got-want) > 1e-12 {
		t.Errorf("Time = %g, want %g", got, want)
	}
}

func TestTimeIsMonotoneInWork(t *testing.T) {
	m := Default()
	f := func(fl64, fl32, by uint32) bool {
		a := mp.Cost{Flops64: uint64(fl64), Flops32: uint64(fl32), Bytes64: uint64(by), Footprint64: 1 << 20}
		b := a
		b.Flops64 += 1000
		b.Bytes64 += 1000
		return m.Time(b) >= m.Time(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeasureTrimsAndIsDeterministic(t *testing.T) {
	m1 := Measure(1.0, DefaultRuns, rand.New(rand.NewSource(7)))
	m2 := Measure(1.0, DefaultRuns, rand.New(rand.NewSource(7)))
	if m1 != m2 {
		t.Error("same seed must give identical measurement")
	}
	if m1.Runs != DefaultRuns {
		t.Errorf("Runs = %d", m1.Runs)
	}
	// Trimmed mean stays within the jitter band around the model time.
	if math.Abs(m1.Mean-1.0) > jitterAmplitude {
		t.Errorf("Mean = %g, outside jitter band", m1.Mean)
	}
	// Total accumulates all runs (budget charging).
	if m1.Total < float64(DefaultRuns)*(1-jitterAmplitude) {
		t.Errorf("Total = %g, too small", m1.Total)
	}
}

func TestMeasureMeanScalesLinearly(t *testing.T) {
	f := func(seed int64, scale uint16) bool {
		s := 1 + float64(scale)
		a := Measure(1.0, DefaultRuns, rand.New(rand.NewSource(seed)))
		b := Measure(s, DefaultRuns, rand.New(rand.NewSource(seed)))
		return math.Abs(b.Mean-s*a.Mean) < 1e-9*s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeasurePanicsOnTooFewRuns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for runs < 3")
		}
	}()
	Measure(1.0, 2, rand.New(rand.NewSource(1)))
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2.0, 1.0); got != 2.0 {
		t.Errorf("Speedup = %g", got)
	}
	if got := Speedup(1.0, 2.0); got != 0.5 {
		t.Errorf("Speedup = %g", got)
	}
}

func TestAcceleratorModel(t *testing.T) {
	m := Accelerator()
	// Rate laddering: each narrower precision doubles throughput.
	if m.Rate32 != 2*m.Rate64 || m.Rate16 != 2*m.Rate32 {
		t.Errorf("rate ladder broken: %g/%g/%g", m.Rate64, m.Rate32, m.Rate16)
	}
	// Half-precision compute runs 4x faster than double.
	d := m.Time(mp.Cost{Flops64: 1e9})
	h := m.Time(mp.Cost{Flops16: 1e9})
	ratio := (d - m.RunOverhead) / (h - m.RunOverhead)
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("f64/f16 ratio = %g, want 4", ratio)
	}
	// Half-width traffic quarters memory time at fixed bandwidth.
	wide := m.Time(mp.Cost{Bytes64: 4e9, Footprint64: 1 << 30})
	narrow := m.Time(mp.Cost{Bytes16: 1e9, Footprint16: 1 << 28})
	r := (wide - m.RunOverhead) / (narrow - m.RunOverhead)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("traffic ratio = %g, want 4", r)
	}
}
