package search

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(70) // spans two words
	if s.Count() != 0 || s.Len() != 70 {
		t.Fatalf("empty set: count=%d len=%d", s.Count(), s.Len())
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(69)
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, i := range []int{0, 63, 64, 69} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	if s.Has(1) || s.Has(65) {
		t.Error("spurious members")
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Error("Remove failed")
	}
}

func TestSetAddRemoveRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(n)
		ref := map[int]bool{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Has(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSetUnionAndEqual(t *testing.T) {
	a := NewSet(10)
	a.Add(1)
	a.Add(3)
	b := NewSet(10)
	b.Add(3)
	b.Add(7)
	u := a.Union(b)
	if u.Count() != 3 || !u.Has(1) || !u.Has(3) || !u.Has(7) {
		t.Errorf("union = %v", u)
	}
	// Union must not mutate operands.
	if a.Count() != 2 || b.Count() != 2 {
		t.Error("union mutated an operand")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
	if a.Equal(b) {
		t.Error("distinct sets equal")
	}
	if a.Equal(NewSet(11)) {
		t.Error("different capacity equal")
	}
}

func TestSetKeyDistinguishes(t *testing.T) {
	a := NewSet(8)
	a.Add(2)
	b := NewSet(8)
	b.Add(3)
	if a.Key() == b.Key() {
		t.Error("distinct sets share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone changes key")
	}
}

func TestFullSetAndMembers(t *testing.T) {
	s := FullSet(5)
	if s.Count() != 5 {
		t.Errorf("FullSet count = %d", s.Count())
	}
	m := s.Members()
	want := []int{0, 1, 2, 3, 4}
	if len(m) != len(want) {
		t.Fatalf("Members = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("Members[%d] = %d", i, m[i])
		}
	}
	if s.String() != "11111" {
		t.Errorf("String = %q", s.String())
	}
}

func TestForEachSubsetOfSize(t *testing.T) {
	var got []string
	forEachSubsetOfSize(4, 2, func(s Set) bool {
		got = append(got, s.String())
		return true
	})
	want := []string{"1100", "1010", "1001", "0110", "0101", "0011"}
	if len(got) != len(want) {
		t.Fatalf("visited %d subsets: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("subset %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Early stop propagates.
	count := 0
	stopped := forEachSubsetOfSize(4, 2, func(s Set) bool {
		count++
		return count < 3
	})
	if !stopped || count != 3 {
		t.Errorf("stopped=%v count=%d", stopped, count)
	}
}

func TestForEachSubsetCountsAreBinomial(t *testing.T) {
	binom := func(n, k int) int {
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for n := 1; n <= 8; n++ {
		total := 0
		for k := 1; k <= n; k++ {
			c := 0
			forEachSubsetOfSize(n, k, func(Set) bool { c++; return true })
			if c != binom(n, k) {
				t.Errorf("n=%d k=%d: %d subsets, want %d", n, k, c, binom(n, k))
			}
			total += c
		}
		if total != (1<<n)-1 {
			t.Errorf("n=%d: %d non-empty subsets, want %d", n, total, (1<<n)-1)
		}
	}
}

// BenchmarkSetUnionKey measures the composition loop's inner operations
// on a CFD-width set.
func BenchmarkSetUnionKey(b *testing.B) {
	x := NewSet(195)
	y := NewSet(195)
	for i := 0; i < 195; i += 3 {
		x.Add(i)
		y.Add(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := x.Union(y)
		if u.Key() == "" {
			b.Fatal("empty key")
		}
	}
}
