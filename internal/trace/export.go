package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// chromeEvent is one Chrome trace_event record. Only "X" (complete) and
// "M" (metadata) phases are emitted; ts and dur are integer
// microseconds, which is what the trace_event spec stipulates and what
// keeps serialised output free of float formatting variance.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON Object Format wrapper ({"traceEvents": [...]}),
// which Perfetto and chrome://tracing both accept and which leaves room
// for metadata keys later.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// us converts simulated seconds to integer trace microseconds.
func us(sec float64) int64 { return int64(math.Round(sec * 1e6)) }

// WriteChromeTrace serialises the trace in Chrome trace_event JSON
// (object format, "X" complete events). All spans render on one
// process/thread (pid=1, tid=1): the canonical timeline is serial by
// construction, and nesting complete events on one track is exactly how
// the trace viewers render a call tree. Durations are computed as
// us(end)-us(start) so a child's rounded interval never escapes its
// parent's. Output is deterministic: fixed event order (metadata, then
// spans pre-order) and sorted JSON keys.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": "mixpbench campaign " + t.Campaign}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": "simulated analysis time"}},
	}
	t.Root.Walk(func(s *Span) {
		dur := us(s.End) - us(s.Start)
		args := make(map[string]any, len(s.Args)+1)
		for k, v := range s.Args {
			args[k] = v
		}
		args["id"] = s.ID
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   us(s.Start),
			Dur:  &dur,
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteJSONL writes the span tree as one JSON object per line in
// depth-first pre-order - a grep/jq-friendly flat log where every line
// carries its parent ID, so the tree is reconstructible.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var err error
	t.Root.Walk(func(s *Span) {
		if err != nil {
			return
		}
		err = enc.Encode(s)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChrome parses Chrome trace_event JSON and checks schema
// conformance: the object-format wrapper, required fields per phase,
// non-negative integer timestamps, and strictly well-nested "X" events
// per (pid, tid) track. It is the check behind `make trace-smoke`.
func ValidateChrome(r io.Reader) error {
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("trace: not valid JSON object format: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	type track struct{ pid, tid int }
	// Per-track stack of open [ts, ts+dur) intervals for nesting checks.
	open := make(map[track][]int64)
	complete := 0
	for i, raw := range f.TraceEvents {
		var ev struct {
			Name *string `json:"name"`
			Ph   *string `json:"ph"`
			Ts   *int64  `json:"ts"`
			Dur  *int64  `json:"dur"`
			Pid  *int    `json:"pid"`
			Tid  *int    `json:"tid"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Name == nil || ev.Ph == nil {
			return fmt.Errorf("trace: event %d: missing name or ph", i)
		}
		switch *ev.Ph {
		case "M":
			// Metadata events carry no timestamps.
		case "X":
			complete++
			if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
				return fmt.Errorf("trace: event %d (%s): X event missing ts/dur/pid/tid", i, *ev.Name)
			}
			if *ev.Ts < 0 || *ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s): negative ts or dur", i, *ev.Name)
			}
			tr := track{*ev.Pid, *ev.Tid}
			end := *ev.Ts + *ev.Dur
			stack := open[tr]
			// Pop finished ancestors, then require containment: pre-order
			// complete events nest iff each event starts within the
			// innermost still-open interval and ends by its end.
			for len(stack) > 0 && stack[len(stack)-1] <= *ev.Ts {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && end > stack[len(stack)-1] {
				return fmt.Errorf("trace: event %d (%s): overlaps enclosing span (ends %d, enclosing ends %d)",
					i, *ev.Name, end, stack[len(stack)-1])
			}
			open[tr] = append(stack, end)
		default:
			return fmt.Errorf("trace: event %d (%s): unsupported phase %q", i, *ev.Name, *ev.Ph)
		}
	}
	if complete == 0 {
		return fmt.Errorf("trace: no complete (X) events")
	}
	return nil
}
