package faults

import (
	"math"
	"strings"
	"testing"
)

func TestDrawDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, Transient: 0.3, Crash: 0.1, Straggler: 0.2}
	a, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 5; attempt++ {
		for _, key := range []string{"kmeans/DD/0.001", "hydro/GP/1e-08", "iccg/HR/1e-08"} {
			if got, want := a.Draw(key, attempt), b.Draw(key, attempt); got != want {
				t.Errorf("Draw(%q, %d) not deterministic: %+v vs %+v", key, attempt, got, want)
			}
		}
	}
}

func TestDrawSeedAndKeySensitivity(t *testing.T) {
	mk := func(seed int64) *Injector {
		in, err := NewInjector(Plan{Seed: seed, Transient: 0.5, Straggler: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(1), mk(2)
	diff := 0
	for i := 0; i < 64; i++ {
		key := strings.Repeat("k", i+1)
		if a.Draw(key, 1) != b.Draw(key, 1) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 1 and 2 draw identical fault sequences")
	}
}

func TestDrawRates(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 3, Transient: 0.25, Crash: 0.25, Straggler: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		f := in.Draw(strings.Repeat("x", i%97)+string(rune('a'+i%26)), 1+i%3)
		counts[f.Kind]++
		switch f.Kind {
		case Transient, Crash:
			if f.FailAfter < 1 || f.FailAfter > DefaultWindow {
				t.Fatalf("FailAfter = %d outside [1, %d]", f.FailAfter, DefaultWindow)
			}
		case Straggler:
			if f.Slowdown != DefaultSlowdown {
				t.Fatalf("Slowdown = %g, want default %g", f.Slowdown, DefaultSlowdown)
			}
		}
	}
	for _, k := range []Kind{None, Transient, Crash, Straggler} {
		frac := float64(counts[k]) / n
		if math.Abs(frac-0.25) > 0.05 {
			t.Errorf("kind %v frequency %.3f, want ~0.25", k, frac)
		}
	}
}

func TestNilInjectorNeverInjects(t *testing.T) {
	var in *Injector
	if f := in.Draw("any", 1); f.Kind != None {
		t.Errorf("nil injector drew %+v", f)
	}
	if p := in.Plan(); p.Enabled() {
		t.Errorf("nil injector plan enabled: %+v", p)
	}
	// A no-op plan yields a nil injector.
	in, err := NewInjector(Plan{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Error("disabled plan produced a non-nil injector")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Transient: -0.1},
		{Crash: 1.5},
		{Transient: 0.6, Crash: 0.3, Straggler: 0.2}, // sum > 1
		{Straggler: 0.1, Slowdown: 0.5},
		{Transient: 0.1, Window: -3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
	if err := (Plan{Transient: 0.5, Crash: 0.25, Straggler: 0.25, Slowdown: 2, Window: 8}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("transient=0.2, crash=0.05,straggler=0.1,slowdown=3,window=8,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 42, Transient: 0.2, Crash: 0.05, Straggler: 0.1, Slowdown: 3, Window: 8}
	if p != want {
		t.Errorf("ParseSpec = %+v, want %+v", p, want)
	}
	for _, bad := range []string{
		"transient",               // no value
		"transient=lots",          // not a number
		"flips=0.5",               // unknown key
		"transient=2",             // invalid rate
		"seed=9.5",                // non-integer seed
		"transient=0.9,crash=0.9", // rates sum > 1
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	// Empty spec is the zero (disabled) plan.
	p, err = ParseSpec("")
	if err != nil || p.Enabled() {
		t.Errorf("ParseSpec(\"\") = %+v, %v", p, err)
	}
}
