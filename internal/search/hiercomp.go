package search

// HierComp is the paper's HC strategy (FloatSmith lineage): it integrates
// the hierarchical and compositional approaches. The hierarchical phase
// identifies program components that can be replaced on their own - trying
// the whole program, then functions, then single variables, descending
// only into components that fail. The compositional phase then combines
// the passing components to find inter-component configurations, without
// ever having started from every variable individually. The search
// terminates when all passing configurations have been composed of other
// passing configurations.
//
// Like HR, the component phase ignores clusters, so a component that
// splits a type-change set fails as a non-compiling variant; the
// composition phase only ever unions components that already compiled, so
// its variants are valid by construction.
type HierComp struct{}

// Name returns "HC".
func (HierComp) Name() string { return "HC" }

// Mode returns ByVariable.
func (HierComp) Mode() Mode { return ByVariable }

// Search runs component discovery and then the composition loop.
func (h HierComp) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	root := buildHierarchy(e.Space())
	var (
		best       Set
		bestRes    Result
		found      bool
		stopErr    error
		components []Set
	)
	consider := func(set Set, r Result) {
		if r.Passed && (!found || r.Speedup > bestRes.Speedup) {
			best, bestRes, found = set, r, true
		}
	}

	// Phase 1: find independently replaceable components, descending only
	// where a component fails. On deeper ladders discovery repeats per
	// rung, shallowest first, so components that tolerate narrower formats
	// enter the composition pool at each depth they pass (one pass, the
	// historical discovery, on the default ladder).
	rungs := e.Space().NumRungs()
	for r := uint8(1); int(r) < rungs && stopErr == nil; r++ {
		var discover func(node *hierNode)
		discover = func(node *hierNode) {
			if stopErr != nil {
				return
			}
			set := NewSet(n)
			for _, u := range node.units {
				set.SetRung(u, r)
			}
			res, err := e.Evaluate(set)
			if err != nil {
				stopErr = err
				return
			}
			consider(set, res)
			if res.Passed {
				components = append(components, set)
				return
			}
			for _, c := range node.children {
				discover(c)
			}
		}
		discover(root)
	}

	// Phase 2: compose passing components, exactly as CM composes passing
	// configurations.
	seen := map[string]bool{}
	for _, c := range components {
		seen[e.Key(c)] = true
	}
	frontier := components
	passing := components
	for len(frontier) > 0 && stopErr == nil {
		var next []Set
	compose:
		for _, f := range frontier {
			for _, p := range passing {
				u := f.Union(p)
				if u.Equal(f) || u.Equal(p) {
					continue
				}
				key := e.Key(u)
				if seen[key] {
					continue
				}
				seen[key] = true
				r, err := e.Evaluate(u)
				if err != nil {
					stopErr = err
					break compose
				}
				consider(u, r)
				if r.Passed {
					next = append(next, u)
				}
			}
		}
		passing = append(passing, next...)
		frontier = next
	}
	return finish(h.Name(), e, best, bestRes, found, stopErr)
}
