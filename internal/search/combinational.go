package search

// Combinational is the brute-force strategy (the paper's CB): it tries all
// combinations of clusters and keeps the fastest passing one. It is only
// tractable for the kernel benchmarks, which is exactly the role the paper
// assigns it - ground truth to compare the other strategies against. On a
// large space it simply runs until the analysis budget expires.
//
// Subsets are visited in descending size, so the most aggressive
// configurations (the likeliest big wins) are tested first and an early
// budget expiry still leaves a meaningful best-so-far.
type Combinational struct{}

// Name returns "CB".
func (Combinational) Name() string { return "CB" }

// Mode returns ByCluster.
func (Combinational) Mode() Mode { return ByCluster }

// Search enumerates every non-empty subset of the clusters.
func (c Combinational) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	var (
		best    Set
		bestRes Result
		found   bool
		stopErr error
	)
enumeration:
	for size := n; size >= 1; size-- {
		stop := forEachSubsetOfSize(n, size, func(set Set) bool {
			r, err := e.Evaluate(set)
			if err != nil {
				stopErr = err
				return false
			}
			if r.Passed && (!found || r.Speedup > bestRes.Speedup) {
				best, bestRes, found = set, r, true
			}
			return true
		})
		if stop {
			break enumeration
		}
	}
	return finish(c.Name(), e, best, bestRes, found, stopErr)
}

// forEachSubsetOfSize visits every subset of {0..n-1} with exactly k
// members in lexicographic order, calling fn for each. fn returns false to
// stop; forEachSubsetOfSize then returns true.
func forEachSubsetOfSize(n, k int, fn func(Set) bool) bool {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		set := NewSet(n)
		for _, i := range idx {
			set.Add(i)
		}
		if !fn(set) {
			return true
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return false
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
