package kernels

import (
	"math"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// planckian is the Planckian distribution kernel (Livermore loop 22
// lineage):
//
//	y[k] = u[k] / v[k]
//	w[k] = x[k] / (exp(y[k]) - 1)
//
// Inventory (Table II: TV=6, TC=2): the five arrays u, v, w, x, y flow
// through the distribution routine by pointer and form one cluster; the
// guard scalar expmax (the largest exponent admitted before the
// denominator saturates) forms its own.
//
// The distribution values sit near 1.0, so demoting the array cluster
// costs a float32 ulp per element and fails the kernel threshold; the
// float32-exact guard demotes losslessly. The search settles on the
// guard-only configuration: zero error, no speedup.
type planckian struct {
	kernel
	vU, vV, vW, vX, vY, vExpmax mp.VarID
}

const (
	planckN     = 8192
	planckReps  = 8
	planckScale = 4
)

// NewPlanckian constructs the kernel.
func NewPlanckian() bench.Benchmark {
	g := typedep.NewGraph()
	k := &planckian{kernel: kernel{
		name:  "planckian",
		desc:  "Planckian distribution",
		graph: g,
	}}
	k.vU = g.Add("u", "planck", typedep.ArrayVar)
	k.vV = g.Add("v", "planck", typedep.ArrayVar)
	k.vW = g.Add("w", "planck", typedep.ArrayVar)
	k.vX = g.Add("x", "planck", typedep.ArrayVar)
	k.vY = g.Add("y", "planck", typedep.ArrayVar)
	k.vExpmax = g.Add("expmax", "planck", typedep.Scalar)
	g.ConnectAll(k.vU, k.vV, k.vW, k.vX, k.vY)
	return k
}

func (k *planckian) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(planckScale)
	rng := t.Rand(seed)
	u := t.NewArray(k.vU, planckN)
	v := t.NewArray(k.vV, planckN)
	w := t.NewArray(k.vW, planckN)
	x := t.NewArray(k.vX, planckN)
	y := t.NewArray(k.vY, planckN)
	fillRand(u, rng, 0.5, 2.5)
	fillRand(v, rng, 1.0, 2.0)
	fillRand(x, rng, 0.5, 1.5)
	expmax := t.Value(k.vExpmax, 20.0)

	for rep := 0; rep < planckReps; rep++ {
		for i := 0; i < planckN; i++ {
			yi := u.Get(i) / v.Get(i)
			if yi > expmax {
				yi = expmax
			}
			y.Set(i, yi)
			w.Set(i, x.Get(i)/(math.Exp(y.Get(i))-1))
		}
	}
	// Division, exp (charged as 8 flops), comparison, subtraction,
	// division per element at the array cluster's precision.
	t.AddFlops(t.Prec(k.vU), 12*planckN*planckReps)
	return bench.Output{Values: w.Snapshot()}
}
