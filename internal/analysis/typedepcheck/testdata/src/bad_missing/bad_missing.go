// Package bad_missing is a typedepcheck fixture with a missing edge:
// Run's dataflow connects two arrays the declared graph keeps apart.
package bad_missing

import (
	"repro/internal/mp"
	"repro/internal/typedep"
)

type badMissing struct {
	name  string
	graph *typedep.Graph

	vA, vB, vC mp.VarID
}

// NewBadMissing declares a and b as independent clusters even though
// Run streams a's elements into b, and c's through a local temporary
// into a.
func NewBadMissing() *badMissing {
	g := typedep.NewGraph()
	k := &badMissing{name: "bad-missing", graph: g}
	k.vA = g.Add("a", "loop", typedep.ArrayVar)
	k.vB = g.Add("b", "loop", typedep.ArrayVar)
	k.vC = g.Add("c", "loop", typedep.ArrayVar)
	return k
}

func (k *badMissing) Run(t *mp.Tape, seed int64) []float64 {
	a := t.NewArray(k.vA, 8)
	b := t.NewArray(k.vB, 8)
	c := t.NewArray(k.vC, 8)
	c.Fill(0.25)
	for i := 0; i < 8; i++ {
		b.Set(i, a.Get(i)*2) // want `missing edge: Run dataflow connects loop::a and loop::b`
		tmp := c.Get(i)
		tmp += 1
		a.Set(i, tmp) // want `missing edge: Run dataflow connects loop::a and loop::c`
	}
	return b.Snapshot()
}
