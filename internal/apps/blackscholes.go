package apps

import (
	"math"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// blackscholes prices a portfolio of European options analytically with
// the Black-Scholes-Merton closed form (PARSEC lineage). Each option needs
// the cumulative normal distribution twice, built from exp/log/sqrt calls.
//
// Inventory (Table II: TV=59, TC=50): six data buffers (spot price,
// strike, rate, volatility, time, price) with small parameter-alias
// clusters, and 44 independent scalars from the CNDF and pricing
// formulas. The paper notes Blackscholes shows the least clustering in the
// suite because its assignments are overwhelmingly scalar-to-scalar, which
// never forces a shared type.
//
// Performance character: the transcendental evaluations go through the
// double-precision math library regardless of the declared variable types
// (libm calls are not retyped by a source-level tool), so only the
// surrounding arithmetic accelerates under demotion - the manual
// single-precision conversion gains just a few percent (Table IV: 1.04x).
type blackscholes struct {
	app
	vSpot, vStrike, vRate, vVol, vTime, vPrice mp.VarID
	scalars                                    []mp.VarID
}

const (
	bsOptions = 4096
	bsReps    = 5
	bsScale   = 8
	// bsLibmFlops is the per-option cost of the CNDF transcendentals
	// (two exp, one log, one sqrt, polynomial evaluation), charged at
	// double precision unconditionally.
	bsLibmFlops = 100
	// bsArithFlops is the per-option cost of the surrounding arithmetic,
	// charged at the configuration's precision.
	bsArithFlops = 10
)

// bsScalarNames are the merged program's tunable scalars: the CNDF locals,
// the pricing locals, and the driver's accumulators, as extracted from the
// PARSEC source.
var bsScalarNames = []string{
	// CNDF
	"InputX", "sign", "OutputX", "xInput", "xNPrimeofX", "expValues",
	"xK2", "xK2_2", "xK2_3", "xK2_4", "xK2_5",
	"xLocal", "xLocal_1", "xLocal_2", "xLocal_3",
	// BlkSchlsEqEuroNoDiv
	"xStockPrice", "xStrikePrice", "xRiskFreeRate", "xVolatility",
	"xTime", "xSqrtTime", "logValues", "xLogTerm", "xD1", "xD2",
	"xPowerTerm", "xDen", "d1", "d2", "FutureValueX",
	"NofXd1", "NofXd2", "NegNofXd1", "NegNofXd2", "OptionPrice",
	// driver
	"inv_sqrt_2xPI", "zero", "half", "const1", "const2",
	"priceDelta", "acc", "lowestPrice", "highestPrice",
}

// NewBlackscholes constructs the application.
func NewBlackscholes() bench.Benchmark {
	g := typedep.NewGraph()
	b := &blackscholes{app: app{
		name:   "Blackscholes",
		desc:   "European option pricing by solving the Black-Scholes PDE analytically",
		metric: verify.MAE,
		graph:  g,
	}}
	// Six buffers; three are consumed by two routines (two aliases), three
	// by one (one alias): 15 variables in 6 clusters.
	b.vSpot = g.Add("sptprice", "main", typedep.ArrayVar)
	addAliases(g, b.vSpot, "BlkSchlsEqEuroNoDiv", "sptprice", 2)
	b.vStrike = g.Add("strike", "main", typedep.ArrayVar)
	addAliases(g, b.vStrike, "BlkSchlsEqEuroNoDiv", "strike", 2)
	b.vRate = g.Add("rate", "main", typedep.ArrayVar)
	addAliases(g, b.vRate, "BlkSchlsEqEuroNoDiv", "rate", 2)
	b.vVol = g.Add("volatility", "main", typedep.ArrayVar)
	addAliases(g, b.vVol, "BlkSchlsEqEuroNoDiv", "volatility", 1)
	b.vTime = g.Add("otime", "main", typedep.ArrayVar)
	addAliases(g, b.vTime, "BlkSchlsEqEuroNoDiv", "otime", 1)
	b.vPrice = g.Add("prices", "main", typedep.ArrayVar)
	addAliases(g, b.vPrice, "bs_thread", "prices", 1)
	// 44 independent scalars.
	for _, n := range bsScalarNames {
		b.scalars = append(b.scalars, g.Add(n, "bs", typedep.Scalar))
	}
	return b
}

// lookup resolves one of the declared scalars by name; a miss is a
// programming error in the inventory and panics.
func (b *blackscholes) lookup(name string) mp.VarID {
	id, ok := b.graph.Lookup(name, "bs")
	if !ok {
		panic("blackscholes: unknown scalar " + name)
	}
	return id
}

// cndf is the cumulative normal distribution function as the PARSEC code
// computes it (Abramowitz-Stegun polynomial), evaluated in double; the
// demotion error enters through the rounded inputs and outputs.
func cndf(x float64) float64 {
	sign := false
	if x < 0 {
		x = -x
		sign = true
	}
	xNPrime := 0.39894228040143270286 * math.Exp(-0.5*x*x)
	k := 1.0 / (1.0 + 0.2316419*x)
	k2 := k
	poly := 0.319381530*k2 +
		-0.356563782*(k2*k) +
		1.781477937*(k2*k*k) +
		-1.821255978*(k2*k*k*k) +
		1.330274429*(k2*k*k*k*k)
	out := 1.0 - xNPrime*poly
	if sign {
		out = 1.0 - out
	}
	return out
}

func (b *blackscholes) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(bsScale)
	rng := t.Rand(seed)
	spot := t.NewArray(b.vSpot, bsOptions)
	strike := t.NewArray(b.vStrike, bsOptions)
	rate := t.NewArray(b.vRate, bsOptions)
	vol := t.NewArray(b.vVol, bsOptions)
	otime := t.NewArray(b.vTime, bsOptions)
	prices := t.NewArray(b.vPrice, bsOptions)
	// Market inputs are parsed from text and land float32-exact (the
	// PARSEC input files carry 6 significant digits); demoting the input
	// buffers is therefore lossless on its own.
	fillRandExact(spot, rng, 512)   // spot in [0, 512)
	fillRandExact(strike, rng, 512) // strike in [0, 512)
	fillRandExact(rate, rng, 0.125)
	fillRandExact(vol, rng, 0.5)
	fillRandExact(otime, rng, 4)

	vD1 := b.lookup("xD1")
	vD2 := b.lookup("xD2")
	vFV := b.lookup("FutureValueX")
	vOP := b.lookup("OptionPrice")
	for rep := 0; rep < bsReps; rep++ {
		for i := 0; i < bsOptions; i++ {
			s := spot.Get(i) + 1 // keep away from zero
			k := strike.Get(i) + 1
			r := rate.Get(i) + 0.01
			v := vol.Get(i) + 0.05
			tt := otime.Get(i) + 0.25

			sqrtT := math.Sqrt(tt)
			logTerm := math.Log(s / k)
			powerTerm := 0.5 * v * v
			den := v * sqrtT
			d1 := t.Assign(vD1, (logTerm+(r+powerTerm)*tt)/den, 6, b.vSpot, b.vStrike)
			d2 := t.Assign(vD2, d1-den, 1, vD1)
			nd1 := cndf(d1)
			nd2 := cndf(d2)
			fv := t.Assign(vFV, k*math.Exp(-r*tt), 3, b.vStrike, b.vRate)
			// Price the call option.
			price := t.Assign(vOP, s*nd1-fv*nd2, 3, b.vSpot, vFV)
			prices.Set(i, price)
		}
	}
	// Transcendentals stay on the double-precision libm path; the
	// remaining per-option arithmetic follows the dominant cluster.
	t.AddFlops(mp.F64, uint64(bsLibmFlops*bsOptions*bsReps))
	t.AddFlops(t.Prec(b.vPrice), uint64(bsArithFlops*bsOptions*bsReps))
	return bench.Output{Values: prices.Snapshot()}
}
