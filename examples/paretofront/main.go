// Paretofront: energy-aware multi-objective tuning over a precision
// ladder.
//
// The paper's study asks one question per configuration - does it beat a
// quality threshold? - and keeps the fastest passing answer. This example
// asks the richer question the suite's energy model enables: across a
// deep precision ladder (double, single, bfloat16), which configurations
// are Pareto-optimal in modelled runtime, modelled energy per run, and
// verification error? The search itself is unchanged (delta debugging,
// threshold-steered); the front is a deterministic byproduct of every
// configuration the search paid to evaluate, so the same tune always
// prints the same table.
//
//	go run ./examples/paretofront [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	mixpbench "repro"
)

func main() {
	name := "hydro-1d"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := mixpbench.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mixpbench.Tune(b, mixpbench.TuneOptions{
		Algorithm:  "DD",
		Threshold:  1e-4,
		Precisions: "f64,f32,bf16",
		Objective:  "pareto",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d configurations evaluated over the f64,f32,bf16 ladder\n\n",
		b.Name(), res.Evaluated)
	if res.Found {
		fmt.Printf("threshold-best: %.3fx speedup, %.3g error, %.4g J per run\n\n",
			res.Speedup, res.Error, res.Energy)
	}

	// Every point is non-dominated: no other evaluated configuration is
	// at least as good on all three axes and better on one. The digit
	// string is the per-variable precision (0=f64, 1=f32, 3=bf16).
	fmt.Printf("%-12s  %-12s  %-12s  %-10s  %s\n",
		"config", "time (s)", "energy (J)", "error", "speedup")
	for _, p := range res.Front {
		fmt.Printf("%-12s  %-12.4g  %-12.4g  %-10.3g  %.2fx\n",
			p.Config, p.Time, p.Energy, p.Error, p.Speedup)
	}
}
