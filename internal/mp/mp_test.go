package mp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestPrecSize(t *testing.T) {
	if got := F64.Size(); got != 8 {
		t.Errorf("F64.Size() = %d, want 8", got)
	}
	if got := F32.Size(); got != 4 {
		t.Errorf("F32.Size() = %d, want 4", got)
	}
}

func TestPrecString(t *testing.T) {
	if F64.String() != "double" || F32.String() != "single" {
		t.Errorf("String() = %q, %q", F64, F32)
	}
	if got := Prec(9).String(); got != "Prec(9)" {
		t.Errorf("Prec(9).String() = %q", got)
	}
}

func TestRoundIdentityForF64(t *testing.T) {
	f := func(x float64) bool {
		return F64.Round(x) == x || (math.IsNaN(x) && math.IsNaN(F64.Round(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundF32MatchesFloat32(t *testing.T) {
	f := func(x float64) bool {
		want := float64(float32(x))
		got := F32.Round(x)
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundF32IsIdempotent(t *testing.T) {
	f := func(x float64) bool {
		once := F32.Round(x)
		twice := F32.Round(once)
		if math.IsNaN(once) {
			return math.IsNaN(twice)
		}
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundF32Overflow(t *testing.T) {
	// Values beyond float32 range must overflow to infinity, because that
	// is what makes the SRAD full-single configuration produce NaN output.
	if got := F32.Round(1e300); !math.IsInf(got, 1) {
		t.Errorf("F32.Round(1e300) = %g, want +Inf", got)
	}
	if got := F32.Round(-1e300); !math.IsInf(got, -1) {
		t.Errorf("F32.Round(-1e300) = %g, want -Inf", got)
	}
}

func TestTapeDefaultsToDouble(t *testing.T) {
	tape := NewTape(4)
	for v := VarID(0); v < 4; v++ {
		if tape.Prec(v) != F64 {
			t.Errorf("Prec(%d) = %v, want double", v, tape.Prec(v))
		}
	}
	if tape.NumVars() != 4 {
		t.Errorf("NumVars() = %d, want 4", tape.NumVars())
	}
}

func TestAssignRoundsToDestination(t *testing.T) {
	tape := NewTape(2)
	tape.SetPrec(1, F32)
	x := 1.0 + 1e-12 // not representable in float32
	if got := tape.Assign(0, x, 1); got != x {
		t.Errorf("double assign changed value: %g", got)
	}
	if got := tape.Assign(1, x, 1); got != float64(float32(x)) {
		t.Errorf("single assign = %g, want %g", got, float64(float32(x)))
	}
}

func TestAssignFlopPrecision(t *testing.T) {
	// Expression runs in single precision only when destination and all
	// sources are single.
	tape := NewTape(3)
	tape.SetPrec(0, F32)
	tape.SetPrec(1, F32)

	tape.Assign(0, 1, 2, 1) // f32 <- f32: two single flops
	c := tape.Cost()
	if c.Flops32 != 2 || c.Flops64 != 0 || c.Casts != 0 {
		t.Fatalf("all-single assign cost = %+v", c)
	}

	tape.Assign(0, 1, 3, 2) // f32 <- f64 source: widened, plus one cast
	c = tape.Cost()
	if c.Flops64 != 3 {
		t.Errorf("Flops64 = %d, want 3", c.Flops64)
	}
	if c.Casts != 1 {
		t.Errorf("Casts = %d, want 1", c.Casts)
	}

	tape.Assign(2, 1, 1, 0) // f64 <- f32 source: double flop, one cast
	c = tape.Cost()
	if c.Flops64 != 4 {
		t.Errorf("Flops64 = %d, want 4", c.Flops64)
	}
	if c.Casts != 2 {
		t.Errorf("Casts = %d, want 2", c.Casts)
	}
}

func TestValueRoundsWithoutWork(t *testing.T) {
	tape := NewTape(1)
	tape.SetPrec(0, F32)
	got := tape.Value(0, math.Pi)
	if got != float64(float32(math.Pi)) {
		t.Errorf("Value = %g", got)
	}
	if c := tape.Cost(); c.Flops() != 0 || c.Casts != 0 {
		t.Errorf("Value charged work: %+v", c)
	}
}

func TestArrayFootprintAndTraffic(t *testing.T) {
	tape := NewTape(2)
	tape.SetPrec(1, F32)

	a64 := tape.NewArray(0, 10)
	a32 := tape.NewArray(1, 10)
	c := tape.Cost()
	if c.Footprint64 != 80 || c.Footprint32 != 40 {
		t.Fatalf("footprints = %d/%d, want 80/40", c.Footprint64, c.Footprint32)
	}

	a64.Set(0, 1)
	_ = a64.Get(0)
	a32.Set(0, 1)
	_ = a32.Get(0)
	c = tape.Cost()
	if c.Bytes64 != 16 {
		t.Errorf("Bytes64 = %d, want 16", c.Bytes64)
	}
	if c.Bytes32 != 8 {
		t.Errorf("Bytes32 = %d, want 8", c.Bytes32)
	}
}

func TestArrayStoresNarrowedValues(t *testing.T) {
	tape := NewTape(1)
	tape.SetPrec(0, F32)
	a := tape.NewArray(0, 1)
	x := 1.0 + 1e-12
	a.Set(0, x)
	if got := a.Get(0); got != float64(float32(x)) {
		t.Errorf("Get = %g, want narrowed %g", got, float64(float32(x)))
	}
}

func TestArrayFillAndSnapshot(t *testing.T) {
	tape := NewTape(1)
	a := tape.NewArray(0, 3)
	a.Fill(2.5)
	snap := a.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, v := range snap {
		if v != 2.5 {
			t.Errorf("snap[%d] = %g", i, v)
		}
	}
	before := tape.Cost()
	_ = a.Snapshot()
	if tape.Cost() != before {
		t.Error("Snapshot charged traffic")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1.5, math.Pi, 1e-300, -1e300}
	for _, p := range []Prec{F64, F32} {
		var buf bytes.Buffer
		if err := WriteValues(&buf, p, vals); err != nil {
			t.Fatalf("%v: write: %v", p, err)
		}
		if got := buf.Len(); got != len(vals)*int(p.Size()) {
			t.Fatalf("%v: wrote %d bytes", p, got)
		}
		back, err := ReadValues(&buf, p, len(vals))
		if err != nil {
			t.Fatalf("%v: read: %v", p, err)
		}
		for i, v := range vals {
			want := p.Round(v)
			if math.IsInf(want, 0) { // 1e-300/-1e300 under F32
				if !math.IsInf(back[i], int(math.Copysign(1, want))) {
					t.Errorf("%v: [%d] = %g, want %g", p, i, back[i], want)
				}
				continue
			}
			if back[i] != want {
				t.Errorf("%v: [%d] = %g, want %g", p, i, back[i], want)
			}
		}
	}
}

func TestReadValuesShortStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteValues(&buf, F64, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadValues(&buf, F64, 2); err == nil {
		t.Error("expected error on short stream")
	}
}

func TestReadIntoConvertsAndCharges(t *testing.T) {
	// File stored as DOUBLE, destination demoted to single: every element
	// must arrive narrowed and the load must charge one cast per element.
	var buf bytes.Buffer
	x := 1.0 + 1e-12
	if err := WriteValues(&buf, F64, []float64{x, x}); err != nil {
		t.Fatal(err)
	}
	tape := NewTape(1)
	tape.SetPrec(0, F32)
	dst := tape.NewArray(0, 2)
	if err := ReadInto(&buf, F64, dst); err != nil {
		t.Fatal(err)
	}
	if got := dst.Get(0); got != float64(float32(x)) {
		t.Errorf("element = %g, want narrowed", got)
	}
	if c := tape.Cost(); c.Casts != 2 {
		t.Errorf("Casts = %d, want 2", c.Casts)
	}
}

func TestWriteFromPreservesDeclaredLayout(t *testing.T) {
	tape := NewTape(1)
	tape.SetPrec(0, F32)
	src := tape.NewArray(0, 2)
	src.Set(0, 1.5)
	src.Set(1, 2.5)

	var buf bytes.Buffer
	if err := WriteFrom(&buf, F64, src); err != nil {
		t.Fatal(err)
	}
	// Declared DOUBLE layout: 2*8 bytes even though the array is single.
	if buf.Len() != 16 {
		t.Fatalf("wrote %d bytes, want 16", buf.Len())
	}
	back, err := ReadValues(&buf, F64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 1.5 || back[1] != 2.5 {
		t.Errorf("round trip = %v", back)
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{Flops64: 1, Flops32: 2, Casts: 3, Bytes64: 4, Bytes32: 5, Footprint64: 6, Footprint32: 7}
	b := a
	a.Add(b)
	want := Cost{Flops64: 2, Flops32: 4, Casts: 6, Bytes64: 8, Bytes32: 10, Footprint64: 12, Footprint32: 14}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
	if a.Flops() != 6 || a.Bytes() != 18 || a.Footprint() != 26 {
		t.Errorf("totals: flops=%d bytes=%d footprint=%d", a.Flops(), a.Bytes(), a.Footprint())
	}
}

func TestTapeString(t *testing.T) {
	tape := NewTape(3)
	tape.SetPrec(1, F32)
	if got := tape.String(); got != "tape{vars: 3, demoted: 1}" {
		t.Errorf("String() = %q", got)
	}
}

func TestScaleMultipliesAllCharges(t *testing.T) {
	tape := NewTape(2)
	tape.SetPrec(1, F32)
	tape.SetScale(10)
	a := tape.NewArray(0, 4) // 4*8*10 footprint
	a.Set(0, 1)              // 8*10 bytes
	tape.AddFlops(F32, 3)    // 30 single flops
	tape.AddBytes(F32, 2)    // 20 bytes32
	tape.Assign(1, 1, 1, 0)  // f32 <- f64: 10 casts, 10 double flops
	c := tape.Cost()
	if c.Footprint64 != 320 {
		t.Errorf("Footprint64 = %d, want 320", c.Footprint64)
	}
	if c.Bytes64 != 80 {
		t.Errorf("Bytes64 = %d, want 80", c.Bytes64)
	}
	if c.Flops32 != 30 {
		t.Errorf("Flops32 = %d, want 30", c.Flops32)
	}
	if c.Bytes32 != 20 {
		t.Errorf("Bytes32 = %d, want 20", c.Bytes32)
	}
	if c.Casts != 10 {
		t.Errorf("Casts = %d, want 10", c.Casts)
	}
	if c.Flops64 != 10 {
		t.Errorf("Flops64 = %d, want 10", c.Flops64)
	}
	if tape.Scale() != 10 {
		t.Errorf("Scale() = %d", tape.Scale())
	}
}

func TestSetScalePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for scale 0")
		}
	}()
	NewTape(1).SetScale(0)
}

// BenchmarkArrayAccess measures the metered load/store path every
// benchmark iteration pays.
func BenchmarkArrayAccess(b *testing.B) {
	tape := NewTape(1)
	tape.SetPrec(0, F32)
	a := tape.NewArray(0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i & 1023
		a.Set(idx, a.Get(idx)+1)
	}
}
