package suite

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/mp"
)

// f64bitsEqual compares floats as raw bit patterns: the compiled path
// promises byte-identity, which is stronger than == (it distinguishes
// -0 from +0) and, unlike reflect.DeepEqual, holds for the NaNs that
// aggressively demoted configurations legitimately produce (SRAD's
// all-single run diverges to NaN on both paths, identically).
func f64bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// resultsBitIdentical is deep Result equality at the bit level: output
// values, metered cost, per-variable profile, modelled time, and the
// measured-timing protocol.
func resultsBitIdentical(a, b bench.Result) bool {
	if len(a.Output.Values) != len(b.Output.Values) {
		return false
	}
	for i := range a.Output.Values {
		if !f64bitsEqual(a.Output.Values[i], b.Output.Values[i]) {
			return false
		}
	}
	return a.Cost == b.Cost &&
		reflect.DeepEqual(a.Profile, b.Profile) && // uint64 fields only
		f64bitsEqual(a.ModelTime, b.ModelTime) &&
		a.Measured.Runs == b.Measured.Runs &&
		f64bitsEqual(a.Measured.Mean, b.Measured.Mean) &&
		f64bitsEqual(a.Measured.Total, b.Measured.Total)
}

// equivalenceConfigs returns the representative precision vectors the
// compiled/interpreted comparison runs per benchmark: the all-double
// reference, the all-single extreme, an alternating mix that exercises
// both the rounding and the skip-rounding specializations in one run, a
// three-level ladder mix (f64/f32/bf16), and a four-level mix adding
// half precision and a custom format - so the byte-identity contract is
// locked over every rounding routine the ladder can reach.
func equivalenceConfigs(b bench.Benchmark) []bench.Config {
	n := b.Graph().NumVars()
	alt := bench.NewConfig(n)
	for i := 0; i < n; i += 2 {
		alt[i] = mp.F32
	}
	mix3 := bench.NewConfig(n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 1:
			mix3[i] = mp.F32
		case 2:
			mix3[i] = mp.BF16
		}
	}
	mix4 := bench.NewConfig(n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 1:
			mix4[i] = mp.F32
		case 2:
			mix4[i] = mp.F16
		case 3:
			mix4[i] = mp.MustCustom(8, 12)
		}
	}
	return []bench.Config{nil, bench.AllSingle(n), alt, mix3, mix4}
}

// TestCompiledInterpretedEquivalence locks the compiler's byte-identity
// contract over the whole suite: for all 17 ports, every evaluation
// entry point (Run, RunIR, RunManualSingle) and representative
// configuration returns a deeply equal Result - output values, metered
// cost, per-variable profile, modelled time, and the measured-timing
// protocol - whether it executes through a precision-specialized
// compiled kernel or a fresh interpreted tape. Each compiled
// configuration runs twice so the second run exercises kernel reuse,
// tape recycling, and input-stream replay.
func TestCompiledInterpretedEquivalence(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			compiled := bench.NewRunner(42)
			compiled.Compiler = compile.New(nil) // private cache: counters below are test-local
			interp := bench.NewRunner(42)
			interp.Compiled = false

			check := func(what string, got, want bench.Result) {
				t.Helper()
				if !resultsBitIdentical(got, want) {
					t.Errorf("%s: compiled result diverges from interpreted\ncompiled:    %+v\ninterpreted: %+v", what, got, want)
				}
			}
			for _, cfg := range equivalenceConfigs(b) {
				label := "reference"
				if cfg != nil {
					label = cfg.Key()
				}
				want := interp.Run(b, cfg)
				check("Run/"+label, compiled.Run(b, cfg), want)
				check("Run/"+label+"/again", compiled.Run(b, cfg), want)
				wantIR := interp.RunIR(b, cfg)
				check("RunIR/"+label, compiled.RunIR(b, cfg), wantIR)
			}
			check("RunManualSingle", compiled.RunManualSingle(b), interp.RunManualSingle(b))

			// The comparisons above must have gone through kernels at all -
			// a silently interpreting "compiled" runner would pass trivially.
			s := compiled.Compiler.Stats()
			if s.Kernels == 0 || s.Misses == 0 {
				t.Errorf("compiled runner never compiled a kernel: %+v", s)
			}
			if s.Hits == 0 {
				t.Errorf("repeated configurations never hit the compile cache: %+v", s)
			}
		})
	}
}
