package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ValidateOutputPaths checks CLI-provided export paths before a
// campaign burns any budget: every set path must be non-empty and no
// two outputs may share a destination (a duplicate would silently
// clobber one artifact with the other). The names map flag names to
// their values; unset ("" by convention is rejected only when present,
// so callers pass just the flags the user actually set).
func ValidateOutputPaths(paths map[string]string) error {
	seen := make(map[string]string, len(paths))
	// Deterministic error messages: check in sorted flag-name order.
	names := make([]string, 0, len(paths))
	for name := range paths {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := paths[name]
		if p == "" {
			return fmt.Errorf("%s: output path must not be empty", name)
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if prev, dup := seen[abs]; dup {
			return fmt.Errorf("%s: duplicate output path %q (already used by %s)", name, p, prev)
		}
		seen[abs] = name
	}
	return nil
}

// CreateOutput creates the file at path, making parent directories as
// needed. It is the shared open path behind every -trace/-profile flag.
func CreateOutput(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("create %s: %w", path, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("create %s: %w", path, err)
	}
	return f, nil
}
