package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
)

// These tests verify that the ports compute what their Livermore-lineage
// fragments claim, against independent plain-Go formulations: the search
// layer only sees (error, time) pairs, so a silently wrong port would
// still "tune" - these tests are what anchor the numerics to the ground
// truth.

// refRand reproduces fillRand's value stream.
func refRand(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}

func TestHydro1DMatchesFormula(t *testing.T) {
	k := NewHydro1D()
	out := bench.NewRunner(42).Reference(k).Output.Values

	// Recompute independently with the same seed and update rule.
	rng := rand.New(rand.NewSource(42))
	y := make([]float64, hydroN+11)
	z := make([]float64, hydroN+11)
	for i := range y {
		y[i] = refRand(rng, 0.01, 0.10)
	}
	for i := range z {
		z[i] = refRand(rng, 0.01, 0.10)
	}
	q := float64(rng.Float32()) * 0.0625
	r := float64(rng.Float32()) * 0.5
	tt := float64(rng.Float32()) * 0.5
	x := make([]float64, hydroN)
	for rep := 0; rep < hydroReps; rep++ {
		for i := 0; i < hydroN; i++ {
			x[i] = q + y[i]*(r*z[i+10]+tt*z[i+11])
		}
	}
	if len(out) != hydroN {
		t.Fatalf("output length %d", len(out))
	}
	for i := range out {
		if out[i] != x[i] {
			t.Fatalf("x[%d] = %v, want %v", i, out[i], x[i])
		}
	}
}

func TestTridiagMatchesRecurrence(t *testing.T) {
	k := NewTridiag()
	out := bench.NewRunner(7).Reference(k).Output.Values

	rng := rand.New(rand.NewSource(7))
	y := make([]float64, tridiagN)
	z := make([]float64, tridiagN)
	for i := range y {
		y[i] = refRand(rng, 0.4, 1.2)
	}
	for i := range z {
		z[i] = refRand(rng, 0.3, 0.9)
	}
	x := make([]float64, tridiagN)
	x[0] = 0.5
	for rep := 0; rep < tridiagReps; rep++ {
		for i := 1; i < tridiagN; i++ {
			x[i] = z[i] * (y[i] - x[i-1])
		}
	}
	for i := range out {
		if out[i] != x[i] {
			t.Fatalf("x[%d] = %v, want %v", i, out[i], x[i])
		}
	}
}

func TestInnerProdMatchesDotProduct(t *testing.T) {
	k := NewInnerProd()
	out := bench.NewRunner(11).Reference(k).Output.Values
	if len(out) != 1 {
		t.Fatalf("output length %d", len(out))
	}
	rng := rand.New(rand.NewSource(11))
	q := 0.0
	zs := make([]float64, innerN)
	xs := make([]float64, innerN)
	for i := 0; i < innerN; i++ {
		zs[i] = float64(rng.Float32()) * 0.0625
		xs[i] = float64(rng.Float32()) * 0.0625
	}
	for i := 0; i < innerN; i++ {
		q += zs[i] * xs[i]
	}
	if math.Abs(out[0]-q) > 1e-12*math.Abs(q) {
		t.Errorf("q = %v, want %v", out[0], q)
	}
}

func TestPlanckianValuesBounded(t *testing.T) {
	// w[k] = x/(exp(y)-1) with y in [u/v range, capped at expmax]: every
	// output must be finite, positive, and consistent with the bounds of
	// the input ranges.
	k := NewPlanckian()
	out := bench.NewRunner(3).Reference(k).Output.Values
	if len(out) != planckN {
		t.Fatalf("output length %d", len(out))
	}
	// y in [0.25, 2.5] -> exp(y)-1 in [0.284, 11.18]; x in [0.5, 1.5).
	lo, hi := 0.5/(math.Exp(2.5)-1), 1.5/(math.Exp(0.25)-1)
	for i, w := range out {
		if math.IsNaN(w) || w <= 0 {
			t.Fatalf("w[%d] = %v", i, w)
		}
		if w < lo*0.99 || w > hi*1.01 {
			t.Fatalf("w[%d] = %v outside [%v, %v]", i, w, lo, hi)
		}
	}
}

func TestEOSMatchesFragment(t *testing.T) {
	k := NewEOS()
	out := bench.NewRunner(5).Reference(k).Output.Values

	rng := rand.New(rand.NewSource(5))
	y := make([]float64, eosN+7)
	z := make([]float64, eosN+7)
	u := make([]float64, eosN+7)
	for i := range y {
		y[i] = refRand(rng, 0.5, 1.5)
	}
	for i := range z {
		z[i] = refRand(rng, 0.5, 1.5)
	}
	for i := range u {
		u[i] = refRand(rng, 0.5, 1.5)
	}
	r := float64(rng.Float32()) * 0.25
	tt := float64(rng.Float32()) * 0.25
	q := float64(rng.Float32()) * 0.25
	for i := 0; i < eosN; i++ {
		want := u[i] + r*(z[i]+r*y[i]) +
			tt*(u[i+3]+r*(u[i+2]+r*u[i+1])+
				tt*(u[i+6]+q*(u[i+5]+q*u[i+4])))
		if out[i] != want {
			t.Fatalf("x[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestICCGHalvesActiveRange(t *testing.T) {
	// The reduction touches exactly n-1 interior elements per repetition
	// (sum over levels of ii/2 for ii = n, n/2, ..., 2).
	k := NewICCG().(*iccg)
	ref := bench.NewRunner(1).Reference(k)
	elems := uint64(0)
	ii := iccgN
	for ii > 1 {
		elems += uint64(ii / 2)
		ii /= 2
	}
	// 4 flops per reduced element per repetition, at scale.
	want := 4 * elems * iccgReps * iccgScale
	if ref.Cost.Flops64 != want {
		t.Errorf("Flops64 = %d, want %d", ref.Cost.Flops64, want)
	}
}

func TestBandedLinEqTouchesBandRows(t *testing.T) {
	// Only the band rows' solution entries change; everything else must
	// be the untouched input.
	k := NewBandedLinEq()
	out := bench.NewRunner(9).Reference(k).Output.Values
	rng := rand.New(rand.NewSource(9))
	x0 := make([]float64, bandedN)
	for i := range x0 {
		x0[i] = refRand(rng, 0.05, 0.35)
	}
	m := (bandedN - 7) / bandedRows
	changed := map[int]bool{}
	for kk := 6; kk < bandedN; kk += m {
		changed[kk-1] = true
	}
	same, diff := 0, 0
	for i := range out {
		if changed[i] {
			if out[i] != x0[i] {
				diff++
			}
			continue
		}
		if out[i] == x0[i] {
			same++
		}
	}
	if same != bandedN-len(changed) {
		t.Errorf("untouched entries changed: %d of %d preserved", same, bandedN-len(changed))
	}
	if diff != len(changed) {
		t.Errorf("band rows updated: %d of %d", diff, len(changed))
	}
}
